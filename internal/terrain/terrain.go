// Package terrain synthesizes the terrain and land-use (clutter) data
// that the paper obtains from the Atoll planning tool's operational
// database. The Magus model only consumes terrain through per-grid path
// loss corrections, so any deterministic, spatially-correlated field with
// realistic statistics exercises the same code paths.
//
// Elevation is generated with the diamond-square midpoint-displacement
// algorithm (a classic fractal terrain generator), and clutter classes
// (water, open, forest, suburban, urban) are derived from a second
// fractal field biased by distance to configured urban centers. Both are
// fully determined by a seed, which makes every experiment in the
// repository reproducible.
package terrain

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"magus/internal/geo"
)

// Class is a land-use category assigned to each terrain cell. The
// categories mirror the clutter classes used by commercial planning
// tools; each has an associated excess path loss and a relative user
// density weight.
type Class uint8

// Clutter classes, ordered from least to most radio-obstructive
// (water reflects, dense urban obstructs).
const (
	ClassWater Class = iota
	ClassOpen
	ClassForest
	ClassSuburban
	ClassUrban
	numClasses
)

// String returns the lower-case name of the clutter class.
func (c Class) String() string {
	switch c {
	case ClassWater:
		return "water"
	case ClassOpen:
		return "open"
	case ClassForest:
		return "forest"
	case ClassSuburban:
		return "suburban"
	case ClassUrban:
		return "urban"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ExcessLossDB returns the additional path loss in dB (negative)
// attributed to the clutter class at the receiver location. Values follow
// the magnitudes used in COST-231 clutter correction practice.
func (c Class) ExcessLossDB() float64 {
	switch c {
	case ClassWater:
		return +2 // over-water paths are slightly better than free space over land
	case ClassOpen:
		return 0
	case ClassForest:
		return -8
	case ClassSuburban:
		return -6
	case ClassUrban:
		return -14
	default:
		return 0
	}
}

// DensityWeight returns the relative user density of the clutter class,
// used when distributing UEs non-uniformly.
func (c Class) DensityWeight() float64 {
	switch c {
	case ClassWater:
		return 0
	case ClassOpen:
		return 0.2
	case ClassForest:
		return 0.1
	case ClassSuburban:
		return 1.0
	case ClassUrban:
		return 3.0
	default:
		return 0
	}
}

// Config controls terrain synthesis.
type Config struct {
	// Seed determines the generated terrain; equal seeds yield equal maps.
	Seed int64
	// Bounds is the area the terrain must cover, in meters.
	Bounds geo.Rect
	// Resolution is the lattice spacing in meters (default 200).
	Resolution float64
	// Roughness in (0, 1] controls elevation variation decay per octave
	// (default 0.55). Higher is rougher.
	Roughness float64
	// ReliefM is the peak-to-peak elevation range in meters (default 300).
	ReliefM float64
	// UrbanCenters bias the clutter field: cells near a center are more
	// likely to classify as urban/suburban. Empty means purely fractal
	// clutter.
	UrbanCenters []geo.Point
	// UrbanRadiusM is the distance over which urban bias decays
	// (default 4000).
	UrbanRadiusM float64
	// UrbanBias in [0,1] scales how strongly centers urbanize their
	// surroundings (default 0.7).
	UrbanBias float64
	// WaterFraction is the approximate fraction of cells classified as
	// water (default 0.04).
	WaterFraction float64
}

func (c *Config) applyDefaults() {
	if c.Resolution <= 0 {
		c.Resolution = 200
	}
	if c.Roughness <= 0 || c.Roughness > 1 {
		c.Roughness = 0.55
	}
	if c.ReliefM <= 0 {
		c.ReliefM = 300
	}
	if c.UrbanRadiusM <= 0 {
		c.UrbanRadiusM = 4000
	}
	if c.UrbanBias <= 0 {
		c.UrbanBias = 0.7
	}
	if c.WaterFraction <= 0 {
		c.WaterFraction = 0.04
	}
}

// Map is a generated terrain: a lattice of elevations and clutter
// classes covering Bounds.
type Map struct {
	bounds  geo.Rect
	step    float64 // lattice spacing in meters
	n       int     // lattice points per side (2^k + 1)
	elev    []float64
	clutter []Class
}

// Generate synthesizes a terrain map from cfg.
func Generate(cfg Config) (*Map, error) {
	cfg.applyDefaults()
	if cfg.Bounds.Width() <= 0 || cfg.Bounds.Height() <= 0 {
		return nil, fmt.Errorf("terrain: bounds must have positive area")
	}
	span := math.Max(cfg.Bounds.Width(), cfg.Bounds.Height())
	cells := span / cfg.Resolution
	k := int(math.Ceil(math.Log2(math.Max(2, cells))))
	if k > 12 { // 4097x4097 lattice cap: ~134 MB of float64
		k = 12
	}
	n := (1 << k) + 1
	m := &Map{
		bounds: cfg.Bounds,
		step:   span / float64(n-1),
		n:      n,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.elev = diamondSquare(rng, k, cfg.Roughness, cfg.ReliefM)
	clutterField := diamondSquare(rng, k, 0.65, 1.0)
	m.classify(clutterField, cfg)
	return m, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *Map {
	m, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// diamondSquare produces a (2^k+1)^2 fractal height field with values
// spanning approximately [-relief/2, +relief/2].
func diamondSquare(rng *rand.Rand, k int, roughness, relief float64) []float64 {
	n := (1 << k) + 1
	h := make([]float64, n*n)
	at := func(x, y int) float64 { return h[y*n+x] }
	set := func(x, y int, v float64) { h[y*n+x] = v }

	amp := 1.0
	// Seed the corners.
	for _, p := range [][2]int{{0, 0}, {n - 1, 0}, {0, n - 1}, {n - 1, n - 1}} {
		set(p[0], p[1], (rng.Float64()*2-1)*amp)
	}
	for step := n - 1; step > 1; step /= 2 {
		half := step / 2
		// Diamond step: centers of squares.
		for y := half; y < n; y += step {
			for x := half; x < n; x += step {
				avg := (at(x-half, y-half) + at(x+half, y-half) +
					at(x-half, y+half) + at(x+half, y+half)) / 4
				set(x, y, avg+(rng.Float64()*2-1)*amp)
			}
		}
		// Square step: edge midpoints.
		for y := 0; y < n; y += half {
			start := half
			if (y/half)%2 == 1 {
				start = 0
			}
			for x := start; x < n; x += step {
				sum, cnt := 0.0, 0
				if x-half >= 0 {
					sum += at(x-half, y)
					cnt++
				}
				if x+half < n {
					sum += at(x+half, y)
					cnt++
				}
				if y-half >= 0 {
					sum += at(x, y-half)
					cnt++
				}
				if y+half < n {
					sum += at(x, y+half)
					cnt++
				}
				set(x, y, sum/float64(cnt)+(rng.Float64()*2-1)*amp)
			}
		}
		amp *= roughness
	}
	// Normalize to [-relief/2, relief/2].
	lo, hi := h[0], h[0]
	for _, v := range h {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for i, v := range h {
		h[i] = ((v-lo)/span - 0.5) * relief
	}
	return h
}

// classify derives clutter classes from the clutter fractal field plus
// urban-center bias and elevation (low wet basins become water).
func (m *Map) classify(field []float64, cfg Config) {
	n := m.n
	m.clutter = make([]Class, n*n)

	// Determine per-cell urbanness score.
	scores := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			p := m.latticePoint(x, y)
			urban := 0.0
			for _, c := range cfg.UrbanCenters {
				d := p.DistanceTo(c)
				u := cfg.UrbanBias * math.Exp(-d/cfg.UrbanRadiusM)
				if u > urban {
					urban = u
				}
			}
			// field is in [-0.5, 0.5]; shift to [0,1] and blend.
			scores[i] = (field[i] + 0.5) + urban
		}
	}

	// Water: lowest-elevation fraction of cells.
	waterLevel := quantile(m.elev, cfg.WaterFraction)
	for i := range m.clutter {
		switch {
		case m.elev[i] <= waterLevel:
			m.clutter[i] = ClassWater
		case scores[i] >= 1.05:
			m.clutter[i] = ClassUrban
		case scores[i] >= 0.75:
			m.clutter[i] = ClassSuburban
		case scores[i] >= 0.45:
			m.clutter[i] = ClassOpen
		default:
			m.clutter[i] = ClassForest
		}
	}
}

// quantile returns the q-quantile (0<=q<=1) of values without modifying
// the input.
func quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	cp := append([]float64(nil), values...)
	// Partial selection via sort is fine at this scale.
	sortFloats(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

func sortFloats(v []float64) {
	// Insertion-free: delegate to sort.Float64s without importing sort in
	// multiple spots — small helper keeps call sites clean.
	quickSort(v, 0, len(v)-1)
}

func quickSort(v []float64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && v[j] < v[j-1]; j-- {
					v[j], v[j-1] = v[j-1], v[j]
				}
			}
			return
		}
		p := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for v[i] < p {
				i++
			}
			for v[j] > p {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(v, lo, j)
			lo = i
		} else {
			quickSort(v, i, hi)
			hi = j
		}
	}
}

// latticePoint returns the map coordinates of lattice node (x, y).
func (m *Map) latticePoint(x, y int) geo.Point {
	return geo.Point{
		X: m.bounds.Min.X + float64(x)*m.step,
		Y: m.bounds.Min.Y + float64(y)*m.step,
	}
}

// Bounds returns the area covered by the map.
func (m *Map) Bounds() geo.Rect { return m.bounds }

// Fingerprint returns a content hash of the map — lattice geometry,
// elevations and clutter classes. Model snapshot caches fold it into
// their keys so a model built over different terrain can never be
// mistaken for a cached one. A Map is immutable after Generate, so the
// fingerprint is stable and safe to compute concurrently.
func (m *Map) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeF(m.bounds.Min.X)
	writeF(m.bounds.Min.Y)
	writeF(m.bounds.Max.X)
	writeF(m.bounds.Max.Y)
	writeF(m.step)
	writeF(float64(m.n))
	for _, v := range m.elev {
		writeF(v)
	}
	cb := make([]byte, len(m.clutter))
	for i, c := range m.clutter {
		cb[i] = byte(c)
	}
	h.Write(cb)
	return h.Sum64()
}

// ElevationAt returns the terrain elevation in meters at p, bilinearly
// interpolated. Points outside the bounds are clamped to the boundary.
func (m *Map) ElevationAt(p geo.Point) float64 {
	fx, fy, x0, y0 := m.locate(p)
	n := m.n
	e00 := m.elev[y0*n+x0]
	e10 := m.elev[y0*n+x0+1]
	e01 := m.elev[(y0+1)*n+x0]
	e11 := m.elev[(y0+1)*n+x0+1]
	return e00*(1-fx)*(1-fy) + e10*fx*(1-fy) + e01*(1-fx)*fy + e11*fx*fy
}

// ClutterAt returns the clutter class at p (nearest lattice node).
func (m *Map) ClutterAt(p geo.Point) Class {
	fx, fy, x0, y0 := m.locate(p)
	x, y := x0, y0
	if fx >= 0.5 {
		x++
	}
	if fy >= 0.5 {
		y++
	}
	return m.clutter[y*m.n+x]
}

// locate maps p to lattice coordinates: integer cell (x0, y0) plus
// fractional offsets, clamped so (x0+1, y0+1) is always valid.
func (m *Map) locate(p geo.Point) (fx, fy float64, x0, y0 int) {
	gx := (p.X - m.bounds.Min.X) / m.step
	gy := (p.Y - m.bounds.Min.Y) / m.step
	gx = math.Max(0, math.Min(gx, float64(m.n-1)))
	gy = math.Max(0, math.Min(gy, float64(m.n-1)))
	x0 = int(gx)
	y0 = int(gy)
	if x0 >= m.n-1 {
		x0 = m.n - 2
	}
	if y0 >= m.n-1 {
		y0 = m.n - 2
	}
	return gx - float64(x0), gy - float64(y0), x0, y0
}

// ClassFractions returns the fraction of lattice cells per clutter class.
func (m *Map) ClassFractions() map[Class]float64 {
	counts := make(map[Class]float64, int(numClasses))
	for _, c := range m.clutter {
		counts[c]++
	}
	total := float64(len(m.clutter))
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

// DiffractionLossDB estimates the terrain obstruction loss in dB
// (negative) along the path from tx (at txHeight meters above ground) to
// rx (at rxHeight), using a single-knife-edge approximation over the
// highest obstruction relative to the line of sight.
func (m *Map) DiffractionLossDB(tx, rx geo.Point, txHeight, rxHeight, wavelengthM float64) float64 {
	d := tx.DistanceTo(rx)
	if d < m.step*2 {
		return 0
	}
	hTx := m.ElevationAt(tx) + txHeight
	hRx := m.ElevationAt(rx) + rxHeight

	// Sample the profile at the lattice resolution, find the worst
	// Fresnel parameter.
	steps := int(d / m.step)
	if steps > 64 {
		steps = 64 // cap profile sampling for speed; adequate for 100 m grids
	}
	worst := math.Inf(-1)
	for i := 1; i < steps; i++ {
		t := float64(i) / float64(steps)
		p := geo.Point{X: tx.X + (rx.X-tx.X)*t, Y: tx.Y + (rx.Y-tx.Y)*t}
		ground := m.ElevationAt(p)
		los := hTx + (hRx-hTx)*t
		h := ground - los // obstruction height above line of sight
		d1 := d * t
		d2 := d * (1 - t)
		v := h * math.Sqrt(2*d/(wavelengthM*d1*d2))
		if v > worst {
			worst = v
		}
	}
	return knifeEdgeLossDB(worst)
}

// knifeEdgeLossDB returns the (negative) diffraction loss for Fresnel
// parameter v using the standard ITU-R P.526 approximation.
func knifeEdgeLossDB(v float64) float64 {
	if v <= -0.78 {
		return 0
	}
	loss := 6.9 + 20*math.Log10(math.Sqrt((v-0.1)*(v-0.1)+1)+v-0.1)
	if loss < 0 {
		loss = 0
	}
	return -loss
}
