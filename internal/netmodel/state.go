package netmodel

import (
	"math"

	"magus/internal/config"
	"magus/internal/units"
	"magus/internal/utility"
)

// State is the full evaluation of one configuration against a Model:
// per-grid serving sector, SINR and maximum rate, and per-sector load.
// Apply performs incremental re-evaluation after a single-sector change;
// Clone snapshots the state for later comparison.
//
// A State owns its Config: mutate the configuration only through Apply
// so the cached radio state stays consistent.
type State struct {
	Model *Model
	Cfg   *config.Config

	rpMw    []float64 // per contributor entry: current received power, mW (0 when off)
	linkDB  []float64 // per entry: base loss + vertical attenuation at current tilt, dB
	totalMw []float64 // per grid: sum of all contributors, mW
	bestSec []int32   // per grid: serving sector, -1 if none
	bestMw  []float64 // per grid: serving sector received power, mW
	rmax    []float64 // per grid: max rate (bits/s) at current SINR
	sinrLo  []float64 // per grid: linear-SINR CQI bucket floor backing rmax
	sinrHi  []float64 // per grid: linear-SINR CQI bucket ceiling (exclusive)
	load    []float64 // per sector: sum of UE weights over served grids
	served  []int32   // per sector: number of served grids

	// Per-grid utility memo: most grids keep their rate between two
	// Utility calls during a search, so the per-UE utility (a log10) is
	// recomputed only for grids whose rate changed. cacheName identifies
	// the utility function the memo belongs to (function names are
	// unique per objective).
	cacheRate []float64
	cacheU    []float64
	cacheName string

	// Scratch for SINRImprovers' affected-grid membership test, reused
	// across calls (the search hot loop calls it once per step). Always
	// all-false between calls; never cloned.
	affectedMark []bool

	// Per-sector served-grid index: servedList[b] holds exactly the grids
	// with bestSec == b, servedPos[g] the grid's slot in its list, so the
	// "which grids does this load shift touch?" sweeps in repairTracking
	// and SpeculateBatch run over the served set instead of the (much
	// larger) contributor entry list. Built with the tracking sum in
	// EnableUtilityTracking, maintained O(1) by setServing, and — like
	// tracking — dropped rather than cloned.
	servedIdxOn bool
	servedList  [][]int32
	servedPos   []int32

	// Incremental utility tracking backing Speculate; see speculate.go.
	// Deliberately not cloned: a clone re-derives its own running sum on
	// first use, so it always equals a fresh full scan. trackFactor is
	// the model's uniform UE factor the sum was derived under; a factor
	// change invalidates the sum (weights scaled underneath it), so the
	// next enable re-derives.
	trackOn     bool
	trackFn     utility.Func
	trackFactor float64
	trackSum    float64
	trackRate   []float64
	trackU      []float64
	gridDirty   []bool
	secDirty    []bool
	dirtyGrids  []int32
	dirtySecs   []int32

	// Incremental KPI aggregates backing KPIUtility and the radio-change
	// grid log backing DrainChangedGrids; see incremental.go. Neither
	// survives Clone (zero values mean "off"), and RecomputeLoads /
	// AssignUsers* switch the aggregates off like they do tracking.
	aggOn    bool
	aggFn    utility.Func
	aggMode  uint8
	aggBk    [][]aggBucket // per sector: quantized-rate buckets
	aggSec   []int32       // per grid: sector accounted under (-1 none)
	aggW     []float64     // per grid: accounted base weight
	aggWL    []float64     // per grid: accounted w·L term
	aggRmax  []float64     // per grid: accounted max rate (bucket key)
	logOn    bool
	logMark  []bool
	logGrids []int32
}

// NewState fully evaluates cfg against the model. The state takes
// ownership of cfg (clone it first if the caller needs the original).
func (m *Model) NewState(cfg *config.Config) *State {
	s := &State{
		Model:   m,
		Cfg:     cfg,
		rpMw:    make([]float64, len(m.core.contribSector)),
		linkDB:  make([]float64, len(m.core.contribSector)),
		totalMw: make([]float64, m.Grid.NumCells()),
		bestSec: make([]int32, m.Grid.NumCells()),
		bestMw:  make([]float64, m.Grid.NumCells()),
		rmax:    make([]float64, m.Grid.NumCells()),
		sinrLo:  make([]float64, m.Grid.NumCells()),
		sinrHi:  make([]float64, m.Grid.NumCells()),
		load:    make([]float64, m.Net.NumSectors()),
		served:  make([]int32, m.Net.NumSectors()),
	}
	s.resetUtilityMemo("")
	s.recomputeAll()
	return s
}

// resetUtilityMemo invalidates the per-grid utility memo and tags it
// with the owning utility function's name.
func (s *State) resetUtilityMemo(name string) {
	if s.cacheRate == nil {
		s.cacheRate = make([]float64, s.Model.Grid.NumCells())
		s.cacheU = make([]float64, s.Model.Grid.NumCells())
	}
	for i := range s.cacheRate {
		s.cacheRate[i] = -1 // rates are never negative
	}
	s.cacheName = name
}

// Clone returns an independent snapshot of the state (the configuration
// is deep-copied too). The utility memo IS copied — it is a consistent
// snapshot of (rate, u(rate)) pairs, so the clone's first Utility call
// under the same objective stays incremental. The Speculate tracking
// arrays and the SINRImprovers scratch are NOT copied: they are either
// transient scratch or cheaper to re-derive than to keep coherent, and
// zero values mean "off"/"unallocated" for both.
func (s *State) Clone() *State {
	return &State{
		Model:     s.Model,
		Cfg:       s.Cfg.Clone(),
		rpMw:      append([]float64(nil), s.rpMw...),
		linkDB:    append([]float64(nil), s.linkDB...),
		totalMw:   append([]float64(nil), s.totalMw...),
		bestSec:   append([]int32(nil), s.bestSec...),
		bestMw:    append([]float64(nil), s.bestMw...),
		rmax:      append([]float64(nil), s.rmax...),
		sinrLo:    append([]float64(nil), s.sinrLo...),
		sinrHi:    append([]float64(nil), s.sinrHi...),
		load:      append([]float64(nil), s.load...),
		served:    append([]int32(nil), s.served...),
		cacheRate: append([]float64(nil), s.cacheRate...),
		cacheU:    append([]float64(nil), s.cacheU...),
		cacheName: s.cacheName,
	}
}

// recomputeAll evaluates every grid from scratch.
func (s *State) recomputeAll() {
	m := s.Model
	// Per-entry received powers.
	for b := 0; b < m.Net.NumSectors(); b++ {
		off := s.Cfg.Off(b)
		power := s.Cfg.PowerDbm(b)
		tilt := s.Cfg.TiltDeg(b)
		for _, ref := range m.core.sectorEntries[b] {
			s.linkDB[ref.Pos] = m.entryLinkDB(int(ref.Pos), tilt)
			if off {
				s.rpMw[ref.Pos] = 0
			} else {
				s.rpMw[ref.Pos] = units.DbmToMw(power + s.linkDB[ref.Pos])
			}
		}
	}
	// Per-grid aggregates.
	for i := range s.load {
		s.load[i] = 0
		s.served[i] = 0
	}
	for g := 0; g < m.Grid.NumCells(); g++ {
		s.rescanGrid(g)
		if best := s.bestSec[g]; best >= 0 {
			s.load[best] += m.ue[g]
			s.served[best]++
		}
	}
}

// rescanGrid recomputes a grid's total, best contributor, and max rate
// from the per-entry received powers. It does not touch loads.
func (s *State) rescanGrid(g int) {
	m := s.Model
	start, end := m.core.gridStart[g], m.core.gridStart[g+1]
	total := 0.0
	best := int32(-1)
	bestMw := 0.0
	for pos := start; pos < end; pos++ {
		rp := s.rpMw[pos]
		total += rp
		if rp > bestMw {
			bestMw = rp
			best = m.core.contribSector[pos]
		}
	}
	s.totalMw[g] = total
	s.bestSec[g] = best
	s.bestMw[g] = bestMw
	s.updateRate(g)
}

// updateRate refreshes rmax[g] from the cached aggregates, caching the
// CQI bucket's linear-SINR bounds alongside — SpeculateBatch tests
// "does this move change the grid's rate at all?" against them without
// re-running the threshold scan.
func (s *State) updateRate(g int) {
	if s.trackOn {
		s.markGrid(int32(g))
	}
	if s.logOn && !s.logMark[g] {
		s.logMark[g] = true
		s.logGrids = append(s.logGrids, int32(g))
	}
	if s.bestSec[g] < 0 || s.bestMw[g] <= 0 {
		s.rmax[g] = 0
		s.sinrLo[g] = 0
		s.sinrHi[g] = 0
	} else {
		interf := s.totalMw[g] - s.bestMw[g]
		if interf < 0 {
			interf = 0 // floating point guard
		}
		sinr := s.bestMw[g] / (s.Model.noiseMw + interf)
		if sinr <= 0 {
			s.rmax[g] = 0
			s.sinrLo[g] = 0
			s.sinrHi[g] = 0
		} else {
			s.rmax[g], s.sinrLo[g], s.sinrHi[g] = s.Model.rateBounds(sinr)
		}
	}
	// KPI aggregate repair: only when something the accounting depends on
	// actually changed — the skip keeps within-CQI-bucket touches free of
	// both the log10 and the (non-bit-neutral) ±repair.
	if s.aggOn && (s.aggSec[g] != s.bestSec[g] || s.aggRmax[g] != s.rmax[g] || s.aggW[g] != s.Model.ue[g]) {
		s.aggReaccount(g)
	}
}

// Apply applies a configuration change and incrementally updates the
// radio state. It returns the change that actually took effect (after
// power/tilt clamping), which is the exact inverse key for undo.
//
// Power-only changes take a fast path: the per-entry linear powers are
// scaled by a single factor instead of re-deriving the antenna pattern
// terms, which is what lets the search evaluate thousands of candidate
// configurations per second.
func (s *State) Apply(ch config.Change) (config.Change, error) {
	applied, err := s.Cfg.Apply(ch)
	if err != nil {
		return applied, err
	}
	if applied.IsZero() {
		return applied, nil
	}
	if applied.TiltDelta == 0 && !applied.TurnOff && !applied.TurnOn &&
		!s.Cfg.Off(applied.Sector) {
		s.applySectorPower(applied.Sector)
	} else {
		s.refreshSector(applied.Sector)
	}
	if s.trackOn {
		s.repairTracking()
	}
	return applied, nil
}

// MustApply is Apply that panics on error; for statically valid changes.
func (s *State) MustApply(ch config.Change) config.Change {
	applied, err := s.Apply(ch)
	if err != nil {
		panic(err)
	}
	return applied
}

// RefreshSector re-derives sector b's link budgets and received powers
// from the model under the state's current configuration — needed after
// InstallLinkTable replaces the sector's link-budget source beneath an
// existing state. Entries whose received power is unchanged are left
// untouched, so refreshing against identical data cannot perturb the
// state.
func (s *State) RefreshSector(b int) {
	s.refreshSector(b)
	if s.trackOn {
		s.repairTracking()
	}
}

// refreshSector recomputes every contributor entry of sector b under the
// current configuration and incrementally fixes the affected grids.
func (s *State) refreshSector(b int) {
	m := s.Model
	off := s.Cfg.Off(b)
	power := s.Cfg.PowerDbm(b)
	tilt := s.Cfg.TiltDeg(b)
	b32 := int32(b)
	for _, ref := range m.core.sectorEntries[b] {
		s.linkDB[ref.Pos] = m.entryLinkDB(int(ref.Pos), tilt)
		var rp float64
		if !off {
			rp = units.DbmToMw(power + s.linkDB[ref.Pos])
		}
		s.updateEntry(int(ref.Grid), ref.Pos, b32, rp)
	}
}

// applySectorPower applies a power-only change to an on-air sector,
// reusing each entry's cached link budget so the antenna-pattern terms
// are not re-derived. The dB-domain recomputation (rather than scaling
// the linear value) keeps the result bit-identical to a full
// re-evaluation, so incremental and fresh states can never diverge.
func (s *State) applySectorPower(b int) {
	power := s.Cfg.PowerDbm(b)
	b32 := int32(b)
	for _, ref := range s.Model.core.sectorEntries[b] {
		if s.rpMw[ref.Pos] == 0 {
			continue
		}
		s.updateEntry(int(ref.Grid), ref.Pos, b32, units.DbmToMw(power+s.linkDB[ref.Pos]))
	}
}

// updateEntry installs a new received power for one contributor entry
// and repairs the owning grid's aggregates, serving assignment and rate.
func (s *State) updateEntry(g int, pos int32, b32 int32, rp float64) {
	old := s.rpMw[pos]
	if rp == old {
		return
	}
	s.rpMw[pos] = rp
	s.totalMw[g] += rp - old

	switch {
	case s.bestSec[g] == b32:
		if rp >= old {
			// Still the strongest: only its level changed.
			s.bestMw[g] = rp
		} else {
			// The serving sector weakened: rescan for a new best.
			s.rescanBest(g)
		}
	case rp > s.bestMw[g] || (rp == s.bestMw[g] && b32 < s.bestSec[g]):
		// b overtakes the previous serving sector. Ties break toward
		// the lower sector ID — exactly how the full rescan resolves
		// them — so co-sited sectors with identical link budgets (e.g.
		// grids behind the site where both patterns hit the
		// front-to-back cap) serve deterministically.
		s.setServing(g, b32, rp)
	}
	s.updateRate(g)
}

// rescanBest re-derives the serving sector of grid g after its previous
// server weakened, updating loads on a serving change.
func (s *State) rescanBest(g int) {
	m := s.Model
	start, end := m.core.gridStart[g], m.core.gridStart[g+1]
	best := int32(-1)
	bestMw := 0.0
	for pos := start; pos < end; pos++ {
		if rp := s.rpMw[pos]; rp > bestMw {
			bestMw = rp
			best = m.core.contribSector[pos]
		}
	}
	if best == s.bestSec[g] {
		s.bestMw[g] = bestMw
		return
	}
	s.setServing(g, best, bestMw)
}

// setServing moves grid g to a new serving sector, maintaining loads and
// served-grid counts.
func (s *State) setServing(g int, sec int32, mw float64) {
	old := s.bestSec[g]
	if s.trackOn {
		if old >= 0 {
			s.markSector(old)
		}
		if sec >= 0 {
			s.markSector(sec)
		}
	}
	if old >= 0 {
		s.load[old] -= s.Model.ue[g]
		s.served[old]--
		if s.served[old] == 0 {
			s.load[old] = 0 // clear floating point residue
		}
	}
	s.bestSec[g] = sec
	s.bestMw[g] = mw
	if sec >= 0 {
		s.load[sec] += s.Model.ue[g]
		s.served[sec]++
	}
	if s.servedIdxOn {
		if old >= 0 {
			list := s.servedList[old]
			p := s.servedPos[g]
			last := int32(len(list) - 1)
			moved := list[last]
			list[p] = moved
			s.servedPos[moved] = p
			s.servedList[old] = list[:last]
		}
		if sec >= 0 {
			s.servedPos[g] = int32(len(s.servedList[sec]))
			s.servedList[sec] = append(s.servedList[sec], int32(g))
		}
	}
}

// buildServedIndex (re)derives the per-sector served-grid index from the
// current serving map.
func (s *State) buildServedIndex() {
	if s.servedList == nil {
		s.servedList = make([][]int32, s.Model.Net.NumSectors())
		s.servedPos = make([]int32, s.Model.Grid.NumCells())
	}
	for b := range s.servedList {
		s.servedList[b] = s.servedList[b][:0]
	}
	for g, b := range s.bestSec {
		if b >= 0 {
			s.servedPos[g] = int32(len(s.servedList[b]))
			s.servedList[b] = append(s.servedList[b], int32(g))
		}
	}
	s.servedIdxOn = true
}

// ServingSector returns the serving sector of grid g, or -1 when the
// grid is out of coverage.
func (s *State) ServingSector(g int) int { return int(s.bestSec[g]) }

// SINRdB returns the grid's SINR in dB, or -Inf when out of coverage.
func (s *State) SINRdB(g int) float64 {
	if s.bestSec[g] < 0 || s.bestMw[g] <= 0 {
		return math.Inf(-1)
	}
	interf := s.totalMw[g] - s.bestMw[g]
	if interf < 0 {
		interf = 0
	}
	return 10 * math.Log10(s.bestMw[g]/(s.Model.noiseMw+interf))
}

// MaxRateBps returns r_max(g): the rate a lone UE would get on grid g.
func (s *State) MaxRateBps(g int) float64 { return s.rmax[g] }

// RateBps returns the actual per-UE rate on grid g (Eq. 4): the max rate
// divided by the serving sector's UE load (at least 1).
//
// Loads are accumulated in base UE units; the model's uniform ScaleUsers
// factor is applied here, at read time, so a whole-market load swing
// never has to rewrite per-sector sums (ueFactor is exactly 1.0 outside
// simulations, and x*1.0 == x in IEEE754).
func (s *State) RateBps(g int) float64 {
	best := s.bestSec[g]
	if best < 0 || s.rmax[g] <= 0 {
		return 0
	}
	n := s.load[best] * s.Model.ueFactor
	if n < 1 {
		n = 1
	}
	return s.rmax[g] / n
}

// Load returns the UE load of sector b (in effective UEs, i.e. with the
// model's uniform ScaleUsers factor applied).
func (s *State) Load(b int) float64 { return s.load[b] * s.Model.ueFactor }

// ServedGrids returns the number of grids served by sector b.
func (s *State) ServedGrids(b int) int { return int(s.served[b]) }

// Utility evaluates the overall network utility f(U(C)) (Section 5)
// under per-UE utility u: the UE-weighted sum of u(rate) over all grids.
func (s *State) Utility(u utility.Func) float64 {
	if s.cacheName != u.Name {
		s.resetUtilityMemo(u.Name)
	}
	f := s.Model.ueFactor
	total := 0.0
	for g, w := range s.Model.ue {
		if w == 0 {
			continue
		}
		rate := 0.0
		if best := s.bestSec[g]; best >= 0 && s.rmax[g] > 0 {
			n := s.load[best] * f
			if n < 1 {
				n = 1
			}
			rate = s.rmax[g] / n
		}
		if rate != s.cacheRate[g] {
			s.cacheRate[g] = rate
			s.cacheU[g] = u.U(rate)
		}
		total += w * f * s.cacheU[g]
	}
	return total
}

// UtilityRead evaluates the overall utility without touching the
// per-grid memo. Utility amortizes u(rate) across repeated evaluations
// of a state a search is mutating, but its memo write makes it unsafe
// on a state shared between goroutines; UtilityRead is the
// concurrency-safe evaluation for shared immutable states (an engine's
// baseline), at the cost of one full u(rate) pass per call.
func (s *State) UtilityRead(u utility.Func) float64 {
	f := s.Model.ueFactor
	total := 0.0
	for g, w := range s.Model.ue {
		if w != 0 {
			total += w * f * u.U(s.RateBps(g))
		}
	}
	return total
}

// UtilityIn is Utility restricted to the given grid cells.
func (s *State) UtilityIn(u utility.Func, grids []int) float64 {
	f := s.Model.ueFactor
	total := 0.0
	for _, g := range grids {
		if w := s.Model.ue[g]; w != 0 {
			total += w * f * u.U(s.RateBps(g))
		}
	}
	return total
}

// ServedUE returns the number of UEs currently in service.
func (s *State) ServedUE() float64 {
	total := 0.0
	for g, w := range s.Model.ue {
		if w != 0 && s.RateBps(g) > 0 {
			total += w
		}
	}
	return total * s.Model.ueFactor
}

// AssignUsersUniform distributes the per-sector nominal UE population
// uniformly across each sector's served grids, evaluated at the state's
// configuration — the paper's UE distribution assumption (Section 4.2).
// The distribution is stored on the Model (users do not move when
// configurations change) and the state's loads are refreshed.
func (s *State) AssignUsersUniform() {
	m := s.Model
	perSector := m.Net.Params.UEsPerSector
	if perSector <= 0 {
		perSector = 100
	}
	for i := range m.ue {
		m.ue[i] = 0
	}
	m.ueFactor = 1
	m.totalUE = 0
	for g := 0; g < m.Grid.NumCells(); g++ {
		best := s.bestSec[g]
		if best < 0 || s.rmax[g] <= 0 {
			continue
		}
		// Weight by served-grid count of the serving sector.
		if n := s.served[best]; n > 0 {
			w := perSector / float64(n)
			m.ue[g] = w
			m.totalUE += w
		}
	}
	s.RecomputeLoads()
}

// AssignUsersWeighted distributes each sector's nominal UE population
// across its served grids proportionally to weight(g) — the paper's
// "finer-grain information about UE distribution" extension (Section
// 4.2). A sector whose served grids all have zero weight falls back to
// uniform. The distribution is stored on the Model, and this state's
// loads are refreshed.
func (s *State) AssignUsersWeighted(weight func(g int) float64) {
	m := s.Model
	perSector := m.Net.Params.UEsPerSector
	if perSector <= 0 {
		perSector = 100
	}
	for i := range m.ue {
		m.ue[i] = 0
	}
	m.ueFactor = 1
	m.totalUE = 0

	// Per-sector weight totals over served grids.
	weightSum := make([]float64, m.Net.NumSectors())
	for g := 0; g < m.Grid.NumCells(); g++ {
		if best := s.bestSec[g]; best >= 0 && s.rmax[g] > 0 {
			weightSum[best] += weight(g)
		}
	}
	for g := 0; g < m.Grid.NumCells(); g++ {
		best := s.bestSec[g]
		if best < 0 || s.rmax[g] <= 0 {
			continue
		}
		var w float64
		if weightSum[best] > 0 {
			w = perSector * weight(g) / weightSum[best]
		} else if n := s.served[best]; n > 0 {
			w = perSector / float64(n)
		}
		m.ue[g] = w
		m.totalUE += w
	}
	s.RecomputeLoads()
}

// RecomputeLoads rebuilds the per-sector loads from the current serving
// map and UE distribution. Needed after the Model's UE distribution
// changes beneath an existing state. The UE weights underneath the
// Speculate running sum may have changed, so tracking is switched off;
// the next Speculate re-derives it.
func (s *State) RecomputeLoads() {
	s.trackOn = false
	s.servedIdxOn = false
	s.aggOn = false
	for i := range s.load {
		s.load[i] = 0
		s.served[i] = 0
	}
	for g := 0; g < s.Model.Grid.NumCells(); g++ {
		if best := s.bestSec[g]; best >= 0 {
			s.load[best] += s.Model.ue[g]
			s.served[best]++
		}
	}
}

// DegradedGrids returns the grids (restricted to those carrying UEs)
// whose per-UE rate under s is strictly worse than under base — the
// paper's affected grid set G fed to the search algorithm.
func (s *State) DegradedGrids(base *State) []int {
	var out []int
	for g := range s.Model.ue {
		if s.Model.ue[g] == 0 {
			continue
		}
		if s.RateBps(g) < base.RateBps(g) {
			out = append(out, g)
		}
	}
	return out
}

// SINRImprovers returns the sectors from candidates whose power increase
// by deltaDb would strictly raise the SINR of at least one grid in
// affected — step (i) of Algorithm 1 (the set β of "conditionally good"
// changes; the paper's line 4 test "can improve g's SINR with T units of
// transmission power change"). The comparison is on continuous SINR, not
// the MCS-quantized rate, so small power steps that do not yet cross a
// CQI boundary still qualify. Off-air sectors and sectors already at
// maximum power are skipped.
func (s *State) SINRImprovers(affected []int, candidates []int, deltaDb float64) []int {
	if deltaDb <= 0 || len(affected) == 0 {
		return nil
	}
	m := s.Model
	// Dense membership scratch instead of a per-call map: the search hot
	// loop calls SINRImprovers every step, and the map allocation plus
	// hashing dominated its cost on large markets.
	if s.affectedMark == nil {
		s.affectedMark = make([]bool, m.Grid.NumCells())
	}
	for _, g := range affected {
		s.affectedMark[g] = true
	}
	factor := math.Pow(10, deltaDb/10)
	var out []int
	for _, b := range candidates {
		if s.Cfg.Off(b) || s.Cfg.AtMaxPower(b) {
			continue
		}
		for _, ref := range m.core.sectorEntries[b] {
			if !s.affectedMark[ref.Grid] {
				continue
			}
			g := int(ref.Grid)
			old := s.rpMw[ref.Pos]
			if old <= 0 {
				continue
			}
			newRp := old * factor
			newTotal := s.totalMw[g] + newRp - old
			newBest := s.bestMw[g]
			if s.bestSec[g] == int32(b) || newRp > newBest {
				newBest = newRp
			}
			interf := newTotal - newBest
			if interf < 0 {
				interf = 0
			}
			oldInterf := s.totalMw[g] - s.bestMw[g]
			if oldInterf < 0 {
				oldInterf = 0
			}
			newSinr := newBest / (m.noiseMw + interf)
			oldSinr := s.bestMw[g] / (m.noiseMw + oldInterf)
			if newSinr > oldSinr*(1+1e-12) {
				out = append(out, b)
				break
			}
		}
	}
	for _, g := range affected {
		s.affectedMark[g] = false
	}
	return out
}

// HandoverUEs returns the number of UEs whose serving sector differs
// between states a and b (both over the same model). Used to count the
// synchronized handovers a configuration step triggers.
func HandoverUEs(a, b *State) float64 {
	f := a.Model.ueFactor
	total := 0.0
	for g, w := range a.Model.ue {
		if w != 0 && a.bestSec[g] != b.bestSec[g] {
			total += w * f
		}
	}
	return total
}
