package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"magus/internal/campaign"
	"magus/internal/core"
	"magus/internal/topology"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	engine, err := core.NewEngine(core.SetupConfig{
		Seed:          3,
		Class:         topology.Suburban,
		RegionSpanM:   6000,
		CellSizeM:     200,
		EqualizeSteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(engine)
	t.Cleanup(s.Close)
	return s
}

// miniSetup sizes a miniature market per class so campaign tests build
// engines in milliseconds rather than seconds.
func miniSetup(class topology.AreaClass, seed int64) core.SetupConfig {
	cfg := core.SetupConfig{Seed: seed, Class: class, EqualizeSteps: 40}
	switch class {
	case topology.Rural:
		cfg.RegionSpanM, cfg.CellSizeM = 12000, 600
	case topology.Urban:
		cfg.RegionSpanM, cfg.CellSizeM = 2400, 150
	default:
		cfg.RegionSpanM, cfg.CellSizeM = 5400, 300
	}
	return cfg
}

// campaignServer builds a server whose orchestrator plans miniature
// markets through its own cache; the sync endpoints share the suburban
// miniature as their engine.
func campaignServer(t *testing.T) (*Server, *campaign.EngineCache) {
	t.Helper()
	cache := campaign.NewEngineCache(8)
	build := func(_ context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		cfg := miniSetup(class, seed)
		key := campaign.EngineKey{Class: class, Seed: seed, SpecHash: campaign.SpecHash(cfg)}
		return cache.GetOrBuild(key, func() (*core.Engine, error) {
			return core.NewEngine(cfg)
		})
	}
	orch, err := campaign.New(campaign.Config{Build: build, Cache: cache, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := build(context.Background(), topology.Suburban, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(engine, Options{Orchestrator: orch})
	t.Cleanup(s.Close)
	return s, cache
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("bad JSON (%d): %v\n%s", rec.Code, err, rec.Body.String()[:min(200, rec.Body.Len())])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	decode(t, rec, &body)
	if body["status"] != "ok" || body["class"] != "suburban" {
		t.Errorf("health body = %v", body)
	}
	if body["sectors"].(float64) <= 0 {
		t.Error("no sectors reported")
	}
}

func TestSectorsGeoJSON(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/sectors")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("content type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []any  `json:"features"`
	}
	decode(t, rec, &fc)
	if fc.Type != "FeatureCollection" || len(fc.Features) == 0 {
		t.Errorf("geojson = %q with %d features", fc.Type, len(fc.Features))
	}
}

func TestCoverageStrideValidation(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/coverage?stride=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("stride=0 status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/coverage?stride=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("stride=abc status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/coverage?stride=3"); rec.Code != http.StatusOK {
		t.Errorf("stride=3 status = %d, want 200", rec.Code)
	}
}

func TestPlanEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/plan?scenario=a&method=joint")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Recovery       float64 `json:"recovery"`
		UtilityBefore  float64 `json:"utility_before"`
		UtilityUpgrade float64 `json:"utility_upgrade"`
		UtilityAfter   float64 `json:"utility_after"`
		Targets        []int   `json:"targets"`
	}
	decode(t, rec, &body)
	if len(body.Targets) != 1 {
		t.Errorf("targets = %v, want one", body.Targets)
	}
	// The search's final step may overshoot f(C_before) slightly, so
	// allow a small margin above it.
	if !(body.UtilityBefore*1.01 >= body.UtilityAfter && body.UtilityAfter >= body.UtilityUpgrade) {
		t.Errorf("utility ordering broken: %+v", body)
	}
	if body.Recovery < 0 || body.Recovery > 1.05 {
		t.Errorf("recovery = %v", body.Recovery)
	}
}

func TestPlanValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/plan?scenario=z",
		"/plan?method=bogus",
		"/plan?utility=bogus",
		"/plan?workers=-1",
		"/plan?workers=abc",
	} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, rec.Code)
		}
	}
}

// TestPlanWorkersParam: ?workers=N selects the parallel scoring path and
// the response surfaces the engine counters.
func TestPlanWorkersParam(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/plan?scenario=a&method=power&workers=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Search struct {
			Workers       int   `json:"workers"`
			MovesProposed int64 `json:"moves_proposed"`
		} `json:"search"`
	}
	decode(t, rec, &body)
	if body.Search.Workers != 2 {
		t.Errorf("search.workers = %d, want 2", body.Search.Workers)
	}
	if body.Search.MovesProposed == 0 {
		t.Errorf("search.moves_proposed = 0, want > 0")
	}
}

func TestRunbookEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/runbook?scenario=a")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var rb struct {
		Steps    []any `json:"steps"`
		Rollback []any `json:"rollback"`
	}
	decode(t, rec, &rb)
	if len(rb.Steps) == 0 || len(rb.Rollback) == 0 {
		t.Errorf("runbook steps=%d rollback=%d", len(rb.Steps), len(rb.Rollback))
	}
}

func TestOutageEndpoint(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/outage?sector=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad sector status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/outage?sector=99999"); rec.Code != http.StatusNotFound {
		t.Errorf("out-of-range sector status = %d, want 404", rec.Code)
	}
	// Pick a sector inside the tuning area: that is the planner's
	// default precomputation scope.
	sector := -1
	for b := range s.engine.Net.Sectors {
		if s.engine.TuningArea().Contains(s.engine.Net.Sectors[b].Pos) {
			sector = b
			break
		}
	}
	if sector < 0 {
		sector = s.engine.Net.Sites[s.engine.Net.CentralSite()].Sectors[0]
	}
	rec := get(t, s, "/outage?sector="+strconv.Itoa(sector))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Precomputed    bool    `json:"precomputed"`
		UtilityOutage  float64 `json:"utility_outage"`
		UtilityApplied float64 `json:"utility_applied"`
	}
	decode(t, rec, &body)
	if !body.Precomputed {
		t.Error("tuning-area outage should be precomputed")
	}
	if body.UtilityApplied < body.UtilityOutage {
		t.Error("applying the response worsened utility")
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	paths := []string{"/healthz", "/plan?scenario=a&method=power", "/sectors",
		"/coverage?stride=4", "/plan?scenario=b&method=tilt"}
	errs := make(chan string, len(paths)*4)
	for i := 0; i < 4; i++ {
		for _, p := range paths {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- path
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for p := range errs {
		t.Errorf("concurrent request %s failed", p)
	}
}

func TestUnknownPath(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/schedule?scenario=a&hours=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		DurationHours int `json:"duration_hours"`
		BestStart     int `json:"best_start"`
		Windows       []struct {
			StartHour            int  `json:"StartHour"`
			TouchesBusinessHours bool `json:"TouchesBusinessHours"`
		} `json:"windows"`
	}
	decode(t, rec, &body)
	if body.DurationHours != 5 || len(body.Windows) != 24 {
		t.Errorf("schedule body: hours=%d windows=%d", body.DurationHours, len(body.Windows))
	}
	// Off-peak recommendation: the best start avoids business hours.
	if body.BestStart >= 5 && body.BestStart < 22 {
		t.Errorf("best start %02d:00, expected night", body.BestStart)
	}
	if rec := get(t, s, "/schedule?hours=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad hours status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/schedule?hours=99"); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range hours status = %d, want 400", rec.Code)
	}
}

// factorialBody is the 27-job campaign request the acceptance criterion
// names: 3 classes x 3 scenarios x 3 methods on one seed.
func factorialBody() string {
	var jobs []string
	for _, class := range []string{"rural", "suburban", "urban"} {
		for _, sc := range []string{"a", "b", "c"} {
			for _, m := range []string{"power", "tilt", "joint"} {
				jobs = append(jobs, fmt.Sprintf(
					`{"class":%q,"seed":1,"scenario":%q,"method":%q}`, class, sc, m))
			}
		}
	}
	return `{"jobs":[` + strings.Join(jobs, ",") + `]}`
}

// campaignStatus is the GET /campaigns/{id} response shape.
type campaignStatus struct {
	Campaign campaign.Snapshot `json:"campaign"`
	Metrics  campaign.Metrics  `json:"metrics"`
}

// pollCampaign polls the status endpoint until the campaign finishes.
func pollCampaign(t *testing.T, s *Server, id string, timeout time.Duration) campaignStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rec := get(t, s, "/campaigns/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
		}
		var st campaignStatus
		decode(t, rec, &st)
		if st.Campaign.Finished {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s did not finish: %+v", id, st.Campaign.Counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCampaignEndToEnd(t *testing.T) {
	s, cache := campaignServer(t)
	rec := post(t, s, "/campaigns", factorialBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
	}
	var accepted struct {
		ID   string `json:"id"`
		Jobs int    `json:"jobs"`
	}
	decode(t, rec, &accepted)
	if accepted.ID == "" || accepted.Jobs != 27 {
		t.Fatalf("accepted = %+v", accepted)
	}
	if loc := rec.Header().Get("Location"); loc != "/campaigns/"+accepted.ID {
		t.Errorf("location = %q", loc)
	}

	st := pollCampaign(t, s, accepted.ID, 2*time.Minute)
	if st.Campaign.Cancelled {
		t.Fatal("campaign reports cancelled")
	}
	if st.Campaign.Counts["done"] != 27 {
		t.Fatalf("counts = %v, want 27 done", st.Campaign.Counts)
	}
	for _, j := range st.Campaign.Jobs {
		if j.State != "done" || j.Result == nil {
			t.Fatalf("job %d: state=%s err=%q", j.ID, j.State, j.Error)
		}
	}
	if st.Campaign.MeanRecovery <= 0 {
		t.Errorf("mean recovery = %v", st.Campaign.MeanRecovery)
	}
	// 27 jobs over 3 distinct markets (plus the server's own suburban
	// engine, built through the same cache): at most 9 builds per the
	// acceptance criterion, exactly 3 in practice.
	if st.Metrics.Cache == nil {
		t.Fatal("no cache stats in metrics")
	}
	if st.Metrics.Cache.Builds > 9 {
		t.Errorf("engine builds = %d, want <= 9", st.Metrics.Cache.Builds)
	}
	if got := cache.Stats().Builds; got != 3 {
		t.Errorf("engine builds = %d, want 3 (one per market)", got)
	}
	if st.Metrics.Jobs["done"] < 27 {
		t.Errorf("orchestrator done count = %d", st.Metrics.Jobs["done"])
	}

	// The campaign shows up in the list.
	var list struct {
		Campaigns []string `json:"campaigns"`
	}
	decode(t, get(t, s, "/campaigns"), &list)
	found := false
	for _, id := range list.Campaigns {
		found = found || id == accepted.ID
	}
	if !found {
		t.Errorf("campaign %s missing from list %v", accepted.ID, list.Campaigns)
	}
}

func TestCampaignCancelEndpoint(t *testing.T) {
	// Builders that only finish on cancellation make the race-free
	// version of "cancel a running campaign" testable.
	orch, err := campaign.New(campaign.Config{
		Build: func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(miniSetup(topology.Suburban, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := New(engine, Options{Orchestrator: orch})
	t.Cleanup(s.Close)

	body := `{"jobs":[{"class":"suburban","seed":1},{"class":"urban","seed":1},{"class":"rural","seed":1}]}`
	rec := post(t, s, "/campaigns", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
	}
	var accepted struct {
		ID string `json:"id"`
	}
	decode(t, rec, &accepted)

	rec = post(t, s, "/campaigns/"+accepted.ID+"/cancel", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel status = %d: %s", rec.Code, rec.Body.String())
	}
	st := pollCampaign(t, s, accepted.ID, 10*time.Second)
	if !st.Campaign.Cancelled {
		t.Error("campaign not marked cancelled")
	}
	if st.Campaign.Counts["cancelled"] != 3 {
		t.Errorf("counts = %v, want 3 cancelled", st.Campaign.Counts)
	}
}

func TestCampaignNotFound(t *testing.T) {
	s, _ := campaignServer(t)
	if rec := get(t, s, "/campaigns/c999"); rec.Code != http.StatusNotFound {
		t.Errorf("status status = %d, want 404", rec.Code)
	}
	rec := post(t, s, "/campaigns/c999/cancel", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("cancel status = %d, want 404", rec.Code)
	}
	var body map[string]string
	decode(t, rec, &body)
	if body["error"] == "" {
		t.Error("404 body carries no JSON error")
	}
}

// TestSimulateEndpoint: the planner's runbook executes through the
// upgrade-window simulator and the response carries summary + series.
func TestSimulateEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/simulate?scenario=a&method=power&sim_seed=7&noise=0.02&series=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Scenario string `json:"scenario"`
		Steps    int    `json:"steps"`
		Summary  struct {
			Ticks          int  `json:"ticks"`
			PushesApplied  int  `json:"pushes_applied"`
			EndsAboveFloor bool `json:"ends_above_floor"`
		} `json:"summary"`
		Series []struct {
			Utility float64 `json:"utility"`
			Floor   float64 `json:"floor_utility"`
		} `json:"series"`
	}
	decode(t, rec, &body)
	if body.Steps == 0 || body.Summary.Ticks == 0 {
		t.Fatalf("empty simulation: %+v", body)
	}
	if body.Summary.PushesApplied != body.Steps {
		t.Errorf("pushes applied = %d, want %d (no faults)",
			body.Summary.PushesApplied, body.Steps)
	}
	if !body.Summary.EndsAboveFloor {
		t.Error("fault-free window ends below floor")
	}
	if len(body.Series) != body.Summary.Ticks {
		t.Errorf("series length = %d, want %d", len(body.Series), body.Summary.Ticks)
	}
	// Without series=1 the per-tick data stays out of the payload.
	rec = get(t, s, "/simulate?scenario=a&method=power&sim_seed=7")
	var lean map[string]any
	decode(t, rec, &lean)
	if _, ok := lean["series"]; ok {
		t.Error("series included without series=1")
	}
}

func TestSimulateValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/simulate?faults=meteor@5",
		"/simulate?faults=push-fail@",
		"/simulate?ticks=-1",
		"/simulate?ticks=abc",
		"/simulate?noise=-0.5",
		"/simulate?start_hour=abc",
		"/simulate?sim_seed=abc",
		"/simulate?scenario=z",
		"/simulate?workers=-1",
		"/simulate?faults=push-fail@999", // step out of runbook range
	} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, rec.Code)
		}
	}
}

// TestCampaignSimulateJob: a kind=simulate job runs the window and its
// result carries the simulation summary.
func TestCampaignSimulateJob(t *testing.T) {
	s, _ := campaignServer(t)
	body := `{"jobs":[{"class":"suburban","seed":1,"scenario":"a","method":"power",
		"kind":"simulate","sim":{"seed":11,"faults":"push-fail@1","diurnal":true}}]}`
	rec := post(t, s, "/campaigns", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
	}
	var accepted struct {
		ID string `json:"id"`
	}
	decode(t, rec, &accepted)
	st := pollCampaign(t, s, accepted.ID, 2*time.Minute)
	if st.Campaign.Counts["done"] != 1 {
		t.Fatalf("counts = %v", st.Campaign.Counts)
	}
	job := st.Campaign.Jobs[0]
	if job.Result == nil || job.Result.Sim == nil {
		t.Fatalf("simulate job carries no sim summary: %+v", job)
	}
	sim := job.Result.Sim
	if sim.Ticks == 0 {
		t.Error("sim ran zero ticks")
	}
	if sim.PushesDropped != 1 {
		t.Errorf("pushes dropped = %d, want 1 (push-fail@1)", sim.PushesDropped)
	}
}

func TestCampaignSimulateValidation(t *testing.T) {
	s, _ := campaignServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown kind", `{"jobs":[{"class":"urban","kind":"dream"}]}`},
		{"sim on plan job", `{"jobs":[{"class":"urban","sim":{"seed":1}}]}`},
		{"bad fault script", `{"jobs":[{"class":"urban","kind":"simulate","sim":{"faults":"meteor@5"}}]}`},
		{"negative ticks", `{"jobs":[{"class":"urban","kind":"simulate","sim":{"ticks":-3}}]}`},
	}
	for _, tc := range cases {
		rec := post(t, s, "/campaigns", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, rec.Code)
			continue
		}
		var body map[string]string
		decode(t, rec, &body)
		if body["error"] == "" {
			t.Errorf("%s: no JSON error body", tc.name)
		}
	}
}

func TestCampaignSubmitValidation(t *testing.T) {
	s, _ := campaignServer(t)
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"jobs":[`},
		{"unknown field", `{"jbos":[]}`},
		{"empty", `{"jobs":[]}`},
		{"bad class", `{"jobs":[{"class":"exurban","seed":1}]}`},
		{"bad scenario", `{"jobs":[{"class":"urban","scenario":"z"}]}`},
		{"bad method", `{"jobs":[{"class":"urban","method":"magic"}]}`},
		{"bad utility", `{"jobs":[{"class":"urban","utility":"profit"}]}`},
		{"negative timeout", `{"jobs":[{"class":"urban","timeout_ms":-5}]}`},
	}
	for _, tc := range cases {
		rec := post(t, s, "/campaigns", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, rec.Code)
			continue
		}
		var body map[string]string
		decode(t, rec, &body)
		if body["error"] == "" {
			t.Errorf("%s: no JSON error body", tc.name)
		}
	}
}
