package search

import (
	"testing"

	"magus/internal/config"
	"magus/internal/geo"
	"magus/internal/netmodel"
	"magus/internal/propagation"
	"magus/internal/topology"
	"magus/internal/utility"
)

// scenario bundles a ready-to-search upgrade situation.
type scenario struct {
	model     *netmodel.Model
	base      *netmodel.State // C_before with users assigned
	upgrade   *netmodel.State // C_upgrade (targets off)
	targets   []int
	neighbors []int
}

func makeScenario(t *testing.T, seed int64) *scenario {
	t.Helper()
	net := topology.MustGenerate(topology.GenConfig{
		Seed:   seed,
		Class:  topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 6000, 6000),
	})
	spm := propagation.MustNewSPM(2.635e9, nil)
	m := netmodel.MustNewModel(net, spm, net.Bounds, netmodel.Params{CellSizeM: 200})

	base := m.NewState(config.New(net))
	base.AssignUsersUniform()
	// Planner pass: make C_before locally optimal, as in operational
	// networks, then re-derive the user distribution from the planned
	// serving map.
	if _, err := Equalize(base, Options{MaxSteps: 400}); err != nil {
		t.Fatal(err)
	}
	base.AssignUsersUniform()

	central := net.CentralSite()
	targets := []int{net.Sites[central].Sectors[0]}

	upgrade := base.Clone()
	for _, tg := range targets {
		upgrade.MustApply(config.Change{Sector: tg, TurnOff: true})
	}
	neighbors := SortByDistanceTo(upgrade, net.NeighborSectors(targets, 4000), targets)
	return &scenario{model: m, base: base, upgrade: upgrade, targets: targets, neighbors: neighbors}
}

func TestPowerSearchImproves(t *testing.T) {
	sc := makeScenario(t, 3)
	uUpgrade := sc.upgrade.Utility(utility.Performance)
	uBefore := sc.base.Utility(utility.Performance)
	if uUpgrade >= uBefore {
		t.Skip("upgrade caused no degradation in this layout")
	}

	work := sc.upgrade.Clone()
	res, err := Power(work, sc.base, sc.neighbors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalUtility < uUpgrade {
		t.Fatalf("search made things worse: %v -> %v", uUpgrade, res.FinalUtility)
	}
	if len(res.Steps) > 0 && res.FinalUtility <= uUpgrade {
		t.Errorf("steps accepted but utility flat: %v", res.FinalUtility)
	}
	// The accepted-step utilities must be strictly increasing.
	prev := uUpgrade
	for i, st := range res.Steps {
		if st.Utility <= prev {
			t.Fatalf("step %d utility %v not above previous %v", i, st.Utility, prev)
		}
		prev = st.Utility
	}
	// Recovery ratio must be within sane bounds.
	rr := utility.RecoveryRatio(uBefore, uUpgrade, res.FinalUtility)
	if rr < 0 || rr > 1+1e-9 {
		t.Errorf("recovery ratio %v outside [0, 1]", rr)
	}
	if res.Evaluations == 0 && len(res.Steps) > 0 {
		t.Error("steps accepted without evaluations")
	}
}

func TestPowerSearchRespectsBounds(t *testing.T) {
	sc := makeScenario(t, 5)
	work := sc.upgrade.Clone()
	if _, err := Power(work, sc.base, sc.neighbors, Options{MaxSteps: 50}); err != nil {
		t.Fatal(err)
	}
	net := sc.model.Net
	for b := range net.Sectors {
		p := work.Cfg.PowerDbm(b)
		if p > net.Sectors[b].MaxPowerDbm || p < net.Sectors[b].MinPowerDbm {
			t.Fatalf("sector %d power %v outside hardware bounds", b, p)
		}
	}
	// Only neighbors may have been touched.
	isNeighbor := map[int]bool{}
	for _, b := range sc.neighbors {
		isNeighbor[b] = true
	}
	for b := range net.Sectors {
		if isNeighbor[b] || b == sc.targets[0] {
			continue
		}
		if work.Cfg.PowerDbm(b) != net.Sectors[b].DefaultPowerDbm {
			t.Fatalf("non-neighbor sector %d power changed", b)
		}
	}
}

func TestPowerSearchDifferentModelsFails(t *testing.T) {
	a := makeScenario(t, 3)
	b := makeScenario(t, 5)
	if _, err := Power(a.upgrade.Clone(), b.base, a.neighbors, Options{}); err == nil {
		t.Error("mismatched models should fail")
	}
}

func TestNaivePowerNeverWorsens(t *testing.T) {
	sc := makeScenario(t, 7)
	u0 := sc.upgrade.Utility(utility.Performance)
	work := sc.upgrade.Clone()
	res, err := NaivePower(work, sc.neighbors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalUtility < u0 {
		t.Fatalf("naive search worsened utility: %v -> %v", u0, res.FinalUtility)
	}
	prev := u0
	for i, st := range res.Steps {
		if st.Utility <= prev {
			t.Fatalf("naive step %d not improving: %v <= %v", i, st.Utility, prev)
		}
		prev = st.Utility
	}
}

func TestMagusAtLeastCompetitiveWithNaive(t *testing.T) {
	// Figure 13's claim: the heuristic is never much worse than naive
	// (improvement ratio >= 0.9 in the paper's worst case).
	for _, seed := range []int64{3, 7, 11} {
		sc := makeScenario(t, seed)
		uUpgrade := sc.upgrade.Utility(utility.Performance)
		uBefore := sc.base.Utility(utility.Performance)
		if uBefore-uUpgrade < 1e-9 {
			continue
		}
		magusWork := sc.upgrade.Clone()
		magusRes, err := Power(magusWork, sc.base, sc.neighbors, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naiveWork := sc.upgrade.Clone()
		naiveRes, err := NaivePower(naiveWork, sc.neighbors, Options{})
		if err != nil {
			t.Fatal(err)
		}
		magusRR := utility.RecoveryRatio(uBefore, uUpgrade, magusRes.FinalUtility)
		naiveRR := utility.RecoveryRatio(uBefore, uUpgrade, naiveRes.FinalUtility)
		if naiveRR > 0.01 && magusRR < 0.8*naiveRR {
			t.Errorf("seed %d: Magus recovery %v far below naive %v", seed, magusRR, naiveRR)
		}
	}
}

func TestTiltSearch(t *testing.T) {
	sc := makeScenario(t, 9)
	u0 := sc.upgrade.Utility(utility.Performance)
	work := sc.upgrade.Clone()
	res, err := Tilt(work, sc.neighbors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalUtility < u0 {
		t.Fatalf("tilt search worsened utility: %v -> %v", u0, res.FinalUtility)
	}
	// Tilt moves must only uptilt (negative deltas) and stay in table.
	for _, st := range res.Steps {
		if st.Change.TiltDelta >= 0 {
			t.Fatalf("tilt step %v is not an uptilt", st.Change)
		}
	}
	net := sc.model.Net
	for b := range net.Sectors {
		if !net.Sectors[b].Tilts.ValidIndex(work.Cfg.TiltIndex(b)) {
			t.Fatalf("sector %d tilt index %d invalid", b, work.Cfg.TiltIndex(b))
		}
	}
}

func TestJointAtLeastTilt(t *testing.T) {
	sc := makeScenario(t, 3)
	tiltWork := sc.upgrade.Clone()
	tiltRes, err := Tilt(tiltWork, sc.neighbors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jointWork := sc.upgrade.Clone()
	jointRes, err := Joint(jointWork, sc.base, sc.neighbors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if jointRes.FinalUtility < tiltRes.FinalUtility-1e-9 {
		t.Errorf("joint %v below tilt-only %v", jointRes.FinalUtility, tiltRes.FinalUtility)
	}
	if jointRes.Evaluations < tiltRes.Evaluations {
		t.Error("joint evaluations should include the tilt phase")
	}
}

func TestSortByDistanceTo(t *testing.T) {
	sc := makeScenario(t, 3)
	sorted := SortByDistanceTo(sc.upgrade, sc.neighbors, sc.targets)
	if len(sorted) != len(sc.neighbors) {
		t.Fatalf("sorted has %d entries, want %d", len(sorted), len(sc.neighbors))
	}
	net := sc.model.Net
	tpos := net.Sectors[sc.targets[0]].Pos
	for i := 1; i < len(sorted); i++ {
		d0 := net.Sectors[sorted[i-1]].Pos.DistanceTo(tpos)
		d1 := net.Sectors[sorted[i]].Pos.DistanceTo(tpos)
		if d0 > d1+1e-9 {
			t.Fatalf("ordering broken at %d: %v > %v", i, d0, d1)
		}
	}
}

func TestBruteForcePower(t *testing.T) {
	sc := makeScenario(t, 3)
	work := sc.upgrade.Clone()
	u0 := work.Utility(utility.Performance)
	sectors := sc.neighbors[:2]
	levels := make([][]float64, len(sectors))
	for i, b := range sectors {
		def := sc.model.Net.Sectors[b].DefaultPowerDbm
		levels[i] = []float64{def, def + 1, def + 2, def + 3}
	}
	res, err := BruteForcePower(work, sectors, levels, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 16 {
		t.Errorf("evaluations = %d, want 4x4 = 16", res.Evaluations)
	}
	if res.FinalUtility < u0 {
		t.Fatalf("brute force worsened utility: %v -> %v", u0, res.FinalUtility)
	}
	// The chosen powers must come from the level sets.
	for i, b := range sectors {
		p := work.Cfg.PowerDbm(b)
		found := false
		for _, l := range levels[i] {
			if p == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("sector %d committed power %v not in level set", b, p)
		}
	}
}

func TestBruteForceErrors(t *testing.T) {
	sc := makeScenario(t, 3)
	work := sc.upgrade.Clone()
	if _, err := BruteForcePower(work, []int{0, 1}, [][]float64{{43}}, Options{}, 0); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := BruteForcePower(work, []int{0}, [][]float64{{}}, Options{}, 0); err == nil {
		t.Error("empty level set should fail")
	}
	big := make([]float64, 100)
	for i := range big {
		big[i] = 30 + float64(i)/10
	}
	if _, err := BruteForcePower(work, []int{0, 1, 2, 3},
		[][]float64{big, big, big, big}, Options{}, 1000); err == nil {
		t.Error("combinatorial explosion should be rejected")
	}
}

func TestBruteForceBeatsOrMatchesHeuristicOnItsGrid(t *testing.T) {
	// On the same discrete grid, exhaustive search is optimal by
	// construction, so it must be at least as good as Algorithm 1
	// restricted to the same two sectors.
	sc := makeScenario(t, 11)
	sectors := sc.neighbors[:2]

	heuristic := sc.upgrade.Clone()
	hRes, err := Power(heuristic, sc.base, sectors, Options{MaxPowerUnitDB: 3})
	if err != nil {
		t.Fatal(err)
	}

	brute := sc.upgrade.Clone()
	levels := make([][]float64, len(sectors))
	for i, b := range sectors {
		def := sc.model.Net.Sectors[b].DefaultPowerDbm
		max := sc.model.Net.Sectors[b].MaxPowerDbm
		for p := def; p <= max; p++ {
			levels[i] = append(levels[i], p)
		}
	}
	bRes, err := BruteForcePower(brute, sectors, levels, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bRes.FinalUtility < hRes.FinalUtility-1e-9 {
		t.Errorf("brute force %v below heuristic %v on the same grid",
			bRes.FinalUtility, hRes.FinalUtility)
	}
}
