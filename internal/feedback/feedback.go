// Package feedback simulates the reactive feedback-based tuning strategy
// (the Self-Organizing-Networks baseline of Section 2 and Figure 12):
// tuning starts only after the target sector is off-air, and each
// iteration changes one tuning unit of one neighbor, guided by measured
// performance rather than by a predictive model.
//
// Two estimators mirror the paper's analysis:
//
//   - Idealized: an oracle identifies the best single-unit move at each
//     step, so each step costs one measurement round (the paper's
//     "even under this idealized scenario, 27 steps").
//   - Realistic: before committing a move, the controller must measure
//     each candidate change in the live network, so a step costs as many
//     measurement rounds as there are candidates probed (the paper's
//     "more realistic estimate ... 310 steps").
//
// Either way, every measurement round takes minutes in a production
// network ("the time to obtain the feedback ... on the order of several
// minutes"), which is what makes the reactive feedback approach slow.
package feedback

import (
	"fmt"

	"magus/internal/config"
	"magus/internal/netmodel"
	"magus/internal/utility"
)

// Mode selects the measurement-cost model.
type Mode int

const (
	// Idealized charges one measurement per committed step.
	Idealized Mode = iota
	// Realistic charges one measurement per candidate probed.
	Realistic
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Idealized:
		return "idealized"
	case Realistic:
		return "realistic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultMeasurementIntervalSec is the assumed wall-clock time of one
// feedback measurement round (extracting performance counters from the
// field): 5 minutes.
const DefaultMeasurementIntervalSec = 300

// Options tune the simulation.
type Options struct {
	// Util is the objective (default utility.Performance).
	Util utility.Func
	// MaxSteps caps committed tuning steps (default 500).
	MaxSteps int
	// PowerUnitDB is the per-step power tuning unit (default 1).
	PowerUnitDB float64
	// MeasurementIntervalSec is the wall-clock cost of one measurement
	// round (default DefaultMeasurementIntervalSec).
	MeasurementIntervalSec float64
	// IncludeTilt adds +-1 tilt steps to the candidate move set.
	IncludeTilt bool
}

func (o *Options) applyDefaults() {
	if o.Util.U == nil {
		o.Util = utility.Performance
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 500
	}
	if o.PowerUnitDB <= 0 {
		o.PowerUnitDB = 1
	}
	if o.MeasurementIntervalSec <= 0 {
		o.MeasurementIntervalSec = DefaultMeasurementIntervalSec
	}
}

// Result summarizes a reactive feedback run.
type Result struct {
	// Steps is the number of committed tuning moves until convergence.
	Steps int
	// Measurements is the total number of feedback measurement rounds.
	Measurements int
	// TimeSeconds is Measurements x MeasurementIntervalSec: how long the
	// network stayed degraded while the controller converged.
	TimeSeconds float64
	// UtilityTimeline holds the utility after each committed step;
	// entry 0 is the starting (C_upgrade) utility.
	UtilityTimeline []float64
	// Moves are the committed tuning moves in order, so the reactive
	// climb can be replayed (e.g. as a pseudo-runbook through the
	// upgrade-window simulator).
	Moves []config.Change
	// FinalUtility is the utility at convergence.
	FinalUtility float64
}

// Reactive runs the feedback-based controller on st (which must already
// be at C_upgrade: targets off-air). st is mutated to the converged
// configuration.
func Reactive(st *netmodel.State, neighbors []int, mode Mode, opts Options) (*Result, error) {
	opts.applyDefaults()
	if mode != Idealized && mode != Realistic {
		return nil, fmt.Errorf("feedback: unknown mode %d", int(mode))
	}
	res := &Result{}
	current := st.Utility(opts.Util)
	res.UtilityTimeline = append(res.UtilityTimeline, current)

	for res.Steps < opts.MaxSteps {
		bestMove := config.Change{}
		bestUtility := current
		probed := 0
		for _, b := range neighbors {
			if st.Cfg.Off(b) {
				continue
			}
			moves := []config.Change{{Sector: b, PowerDelta: opts.PowerUnitDB}}
			if opts.IncludeTilt {
				moves = append(moves,
					config.Change{Sector: b, TiltDelta: -1},
					config.Change{Sector: b, TiltDelta: 1},
				)
			}
			for _, mv := range moves {
				applied, err := st.Apply(mv)
				if err != nil {
					return nil, err
				}
				if applied.IsZero() {
					continue
				}
				probed++
				if u := st.Utility(opts.Util); u > bestUtility {
					bestUtility = u
					bestMove = applied
				}
				if _, err := st.Apply(applied.Inverse()); err != nil {
					return nil, err
				}
			}
		}
		switch mode {
		case Idealized:
			// The oracle needs only the single post-commit measurement.
			if !bestMove.IsZero() {
				res.Measurements++
			}
		case Realistic:
			// Every probe was a live measurement round.
			res.Measurements += probed
		}
		if bestMove.IsZero() {
			break // converged: no single-unit move improves utility
		}
		if _, err := st.Apply(bestMove); err != nil {
			return nil, err
		}
		current = bestUtility
		res.Steps++
		res.Moves = append(res.Moves, bestMove)
		res.UtilityTimeline = append(res.UtilityTimeline, current)
	}
	res.FinalUtility = current
	res.TimeSeconds = float64(res.Measurements) * opts.MeasurementIntervalSec
	return res, nil
}

// TimelinePoint is one sample of a utility-versus-time series for the
// Figure 12 comparison.
type TimelinePoint struct {
	// Step is the measurement-round index since the upgrade began.
	Step int
	// Utility is the overall network utility at that time.
	Utility float64
}

// Series is a named utility timeline.
type Series struct {
	Name   string
	Points []TimelinePoint
}

// ConvergenceSeries assembles the four Figure 12 series over a horizon
// of steps: proactive model-based (at f(C_after) throughout), reactive
// model-based (one step of f(C_upgrade), then f(C_after)), no tuning
// (f(C_upgrade) throughout), and the supplied reactive feedback climb.
func ConvergenceSeries(upgradeUtility, afterUtility float64, reactive *Result, horizon int) []Series {
	if horizon < len(reactive.UtilityTimeline) {
		horizon = len(reactive.UtilityTimeline)
	}
	mk := func(name string, f func(i int) float64) Series {
		s := Series{Name: name}
		for i := 0; i < horizon; i++ {
			s.Points = append(s.Points, TimelinePoint{Step: i, Utility: f(i)})
		}
		return s
	}
	return []Series{
		mk("proactive-model", func(int) float64 { return afterUtility }),
		mk("reactive-model", func(i int) float64 {
			if i == 0 {
				return upgradeUtility
			}
			return afterUtility
		}),
		mk("reactive-feedback", func(i int) float64 {
			if i < len(reactive.UtilityTimeline) {
				return reactive.UtilityTimeline[i]
			}
			return reactive.FinalUtility
		}),
		mk("no-tuning", func(int) float64 { return upgradeUtility }),
	}
}
