// Upgrade season: schedule a whole market's worth of planned upgrades
// as an ordered sequence of waves, not one mitigation at a time. The
// scheduler builds a co-upgrade conflict graph (sectors whose coverage
// overlaps must not go dark together), anneals the wave assignment
// under a tight maintenance calendar, and plans each wave's mitigation
// and runbook — then compares the result against the naive
// round-robin spreadsheet schedule on the number an operator answers
// for: the season's worst f(C_after).
//
//	go run ./examples/upgrade-season
package main

import (
	"fmt"
	"log"

	"magus"
)

func main() {
	engine, err := magus.NewEngine(magus.SetupConfig{
		Seed:        42,
		Class:       magus.Suburban,
		RegionSpanM: 6000,
		CellSizeM:   200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d sites, %d sectors\n",
		len(engine.Net.Sites), engine.Net.NumSectors())

	// A deliberately tight calendar: 3 field crews over 6 slots, with
	// slot 2 blacked out (say, a marquee event). Scarcity is what makes
	// the schedule matter — with a generous calendar every wave is a
	// singleton and any order scores the same.
	opts := magus.WaveOptions{
		Constraints: magus.WaveConstraints{
			CrewsPerWave:     3,
			MaxWaves:         5,
			Blackout:         []int{2},
			OverlapThreshold: 0.4,
		},
		Method: magus.Joint,
		Seed:   1, // equal seeds reproduce the season bit-identically
	}

	// nil scope = every sector in the engine's tuning area.
	season, err := magus.PlanWaveSeason(engine, nil, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nupgrade set: %d sectors, conflict graph %d edges (max degree %d)\n",
		len(season.Sectors), season.ConflictEdges, season.MaxConflictDegree)
	fmt.Printf("anneal accepted %d of %d moves\n\n",
		season.AnnealAccepted, season.AnnealIterations)

	fmt.Printf("%-5s %-5s %-9s %10s %9s  %s\n",
		"wave", "slot", "mode", "f(after)", "recovery", "sectors")
	for _, w := range season.Waves {
		fmt.Printf("%-5d %-5d %-9s %10.1f %8.1f%%  %v\n",
			w.Wave, w.Slot, w.Semantics, w.UtilityAfter, 100*w.Recovery, w.Sectors)
	}
	fmt.Printf("\nseason min f(C_after) %.1f (mean %.1f), f(C_before) %.1f, %.0f handovers\n",
		season.MinWaveUtility, season.MeanWaveUtility,
		season.UtilityBefore, season.TotalHandovers)

	// Every wave carries an executable runbook annotated with its wave
	// number, slot, rolling-vs-stopping semantics and halt floor.
	first := season.Waves[0]
	fmt.Printf("\nwave 1 runbook: %d steps, halt floor %.1f, %s semantics\n",
		len(first.Runbook.Steps), first.Runbook.Wave.HaltFloor, first.Runbook.Wave.Semantics)
}
