package outageplan

import (
	"testing"

	"magus/internal/core"
	"magus/internal/topology"
	"magus/internal/utility"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.SetupConfig{
		Seed:          3,
		Class:         topology.Suburban,
		RegionSpanM:   6000,
		CellSizeM:     200,
		EqualizeSteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testPlanner(t *testing.T, e *core.Engine) *Planner {
	t.Helper()
	central := e.Net.CentralSite()
	p, err := New(e, e.Net.Sites[central].Sectors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewCoversScope(t *testing.T) {
	e := testEngine(t)
	p := testPlanner(t, e)
	covered := p.Covered()
	if len(covered) != 3 {
		t.Fatalf("covered %d sectors, want the central site's 3", len(covered))
	}
	for _, s := range covered {
		entry, ok := p.Lookup(s)
		if !ok {
			t.Fatalf("sector %d missing", s)
		}
		if !entry.AfterCfg.Off(s) {
			t.Errorf("sector %d not off in its precomputed config", s)
		}
		// The search's last accepted step may overshoot the f(C_before)
		// cap slightly, so a hair above 1.0 is possible.
		if entry.ExpectedRecovery < 0 || entry.ExpectedRecovery > 1.05 {
			t.Errorf("sector %d expected recovery %v outside [0,1]", s, entry.ExpectedRecovery)
		}
	}
}

func TestNewDefaultScope(t *testing.T) {
	e := testEngine(t)
	p, err := New(e, nil, Options{Method: core.PowerOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Covered()) == 0 {
		t.Fatal("default scope empty")
	}
}

func TestRespondPrecomputed(t *testing.T) {
	e := testEngine(t)
	p := testPlanner(t, e)
	sector := p.Covered()[0]
	resp, err := p.Respond(sector, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Precomputed {
		t.Error("covered sector should hit the table")
	}
	if resp.UtilityApplied < resp.UtilityOutage-1e-9 {
		t.Errorf("applying precomputed config worsened utility: %v -> %v",
			resp.UtilityOutage, resp.UtilityApplied)
	}
	// The applied utility should match the precomputed expectation (the
	// model is the same; no model error here).
	entry, _ := p.Lookup(sector)
	if diff := resp.UtilityApplied - entry.ExpectedUtility; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("applied utility %v != expected %v", resp.UtilityApplied, entry.ExpectedUtility)
	}
}

func TestRespondWithRefinement(t *testing.T) {
	e := testEngine(t)
	p := testPlanner(t, e)
	sector := p.Covered()[0]
	resp, err := p.Respond(sector, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.UtilityRefined < resp.UtilityApplied-1e-9 {
		t.Errorf("refinement worsened utility: %v -> %v",
			resp.UtilityApplied, resp.UtilityRefined)
	}
	if resp.RefinementSteps > 5 {
		t.Errorf("refinement used %d steps, cap was 5", resp.RefinementSteps)
	}
}

func TestRespondFallbackSearch(t *testing.T) {
	e := testEngine(t)
	p := testPlanner(t, e)
	// Pick a sector outside the covered scope.
	uncovered := -1
	coveredSet := map[int]bool{}
	for _, s := range p.Covered() {
		coveredSet[s] = true
	}
	for b := 0; b < e.Net.NumSectors(); b++ {
		if !coveredSet[b] && e.Before.Load(b) > 0 {
			uncovered = b
			break
		}
	}
	if uncovered < 0 {
		t.Skip("no uncovered loaded sector")
	}
	resp, err := p.Respond(uncovered, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Precomputed {
		t.Error("uncovered sector should fall back to live search")
	}
	if resp.UtilityApplied < resp.UtilityOutage-1e-9 {
		t.Error("fallback search worsened utility")
	}
}

func TestRespondBadSector(t *testing.T) {
	e := testEngine(t)
	p := testPlanner(t, e)
	if _, err := p.Respond(-1, 0); err == nil {
		t.Error("negative sector should fail")
	}
	if _, err := p.Respond(e.Net.NumSectors(), 0); err == nil {
		t.Error("out-of-range sector should fail")
	}
}

func TestNewEmptyScopeFails(t *testing.T) {
	e := testEngine(t)
	if _, err := New(e, []int{}, Options{Util: utility.Performance}); err == nil {
		t.Error("explicit empty scope should fail")
	}
}
