package runbook

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"magus/internal/config"
	"magus/internal/core"
	"magus/internal/migrate"
	"magus/internal/topology"
	"magus/internal/upgrade"
	"magus/internal/utility"
)

func buildFixture(t *testing.T) (*core.Plan, *migrate.Plan) {
	t.Helper()
	engine, err := core.NewEngine(core.SetupConfig{
		Seed:          3,
		Class:         topology.Suburban,
		RegionSpanM:   6000,
		CellSizeM:     200,
		EqualizeSteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := engine.Mitigate(upgrade.SingleSector, core.Joint, utility.Performance)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := plan.GradualMigration(migrate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan, mig
}

func TestBuildNil(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Error("nil inputs should fail")
	}
}

func TestBuildStructure(t *testing.T) {
	plan, mig := buildFixture(t)
	rb, err := Build(plan, mig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Steps) != len(mig.Steps) {
		t.Fatalf("runbook has %d steps, migration has %d", len(rb.Steps), len(mig.Steps))
	}
	// Exactly one off-air step, and it is the last one.
	offAir := 0
	for i, s := range rb.Steps {
		if s.Index != i+1 {
			t.Fatalf("step %d has index %d", i, s.Index)
		}
		if s.Kind == KindOffAir {
			offAir++
			if i != len(rb.Steps)-1 {
				t.Error("off-air step must be last")
			}
			if s.Note == "" {
				t.Error("off-air step should carry a note")
			}
		}
	}
	if offAir != 1 {
		t.Fatalf("off-air steps = %d, want 1", offAir)
	}
	// Targets never appear among tuned sectors.
	for _, tuned := range rb.TunedSectors {
		for _, tg := range rb.Targets {
			if tuned == tg {
				t.Fatal("target listed as tuned sector")
			}
		}
	}
	// Tuned sectors are sorted.
	for i := 1; i < len(rb.TunedSectors); i++ {
		if rb.TunedSectors[i-1] > rb.TunedSectors[i] {
			t.Fatal("tuned sectors not sorted")
		}
	}
}

func TestRollbackRestoresConfig(t *testing.T) {
	plan, mig := buildFixture(t)
	rb, err := Build(plan, mig)
	if err != nil {
		t.Fatal(err)
	}
	// Apply every step's changes to a copy of C_before, then the
	// rollback: the configuration must return exactly to C_before.
	engineBefore := plan.Upgrade.Cfg.Clone()
	// plan.Upgrade has targets off; reconstruct C_before by turning them
	// back on.
	for _, tg := range plan.Targets {
		if _, err := engineBefore.Apply(config.Change{Sector: tg, TurnOn: true}); err != nil {
			t.Fatal(err)
		}
	}
	original := engineBefore.Clone()
	for _, step := range rb.Steps {
		for _, ch := range step.Changes {
			if _, err := engineBefore.Apply(ch); err != nil {
				t.Fatal(err)
			}
		}
	}
	if engineBefore.Equal(original) {
		t.Fatal("runbook steps had no effect")
	}
	for _, ch := range rb.Rollback {
		if _, err := engineBefore.Apply(ch); err != nil {
			t.Fatal(err)
		}
	}
	if !engineBefore.Equal(original) {
		t.Fatal("rollback did not restore the original configuration")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	plan, mig := buildFixture(t)
	rb, err := Build(plan, mig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Runbook
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != rb.Title || len(decoded.Steps) != len(rb.Steps) {
		t.Error("JSON round trip lost data")
	}
	if len(decoded.Rollback) != len(rb.Rollback) {
		t.Error("rollback lost in round trip")
	}
}

func TestWriteText(t *testing.T) {
	plan, mig := buildFixture(t)
	rb, err := Build(plan, mig)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"RUNBOOK:", "EXECUTION", "ROLLBACK", "off-air"} {
		if !strings.Contains(text, want) {
			t.Errorf("runbook text missing %q", want)
		}
	}
}
