package experiments

import (
	"fmt"
	"strings"

	"magus/internal/core"
	"magus/internal/migrate"
	"magus/internal/topology"
	"magus/internal/upgrade"
	"magus/internal/utility"
)

// Figure11 compares the gradual migration against the direct (one-shot)
// proactive strategy, the paper's Figure 11: per-step utility and
// handover series, burst reduction factor, and seamless fractions.
type Figure11 struct {
	Gradual *migrate.Plan
	OneShot *migrate.Plan
	// BurstReductionFactor is one-shot max burst / gradual max burst
	// (the paper reports 3x for its example, 8x across scenarios).
	BurstReductionFactor float64
}

// RunFigure11 plans a suburban scenario-(b) upgrade (a full site going
// down displaces the most users) and produces both migration plans.
func RunFigure11(seed int64) (*Figure11, error) {
	engine, err := BuildEngine(seed, DefaultAreaSpec(topology.Suburban))
	if err != nil {
		return nil, fmt.Errorf("figure11: %w", err)
	}
	plan, err := engine.Mitigate(upgrade.FullSite, core.Joint, utility.Performance)
	if err != nil {
		return nil, fmt.Errorf("figure11: %w", err)
	}
	gradual, err := plan.GradualMigration(migrate.Options{})
	if err != nil {
		return nil, fmt.Errorf("figure11 gradual: %w", err)
	}
	oneShot, err := plan.OneShotMigration(migrate.Options{})
	if err != nil {
		return nil, fmt.Errorf("figure11 oneshot: %w", err)
	}
	out := &Figure11{Gradual: gradual, OneShot: oneShot}
	if gradual.MaxSimultaneousHandovers > 0 {
		out.BurstReductionFactor = oneShot.MaxSimultaneousHandovers / gradual.MaxSimultaneousHandovers
	}
	return out, nil
}

// String prints the step series and the headline comparisons.
func (f *Figure11) String() string {
	var b strings.Builder
	b.WriteString("Figure 11: benefits of gradual tuning (Proactive Gradual vs Proactive)\n")
	fmt.Fprintf(&b, "  gradual: steps=%d max burst=%.0f total handovers=%.0f seamless=%.1f%% floor=%.1f (f(C_after)=%.1f)\n",
		len(f.Gradual.Steps), f.Gradual.MaxSimultaneousHandovers, f.Gradual.TotalHandovers,
		100*f.Gradual.SeamlessFraction(), f.Gradual.UtilityFloor, f.Gradual.AfterUtility)
	fmt.Fprintf(&b, "  one-shot: max burst=%.0f total handovers=%.0f seamless=%.1f%%\n",
		f.OneShot.MaxSimultaneousHandovers, f.OneShot.TotalHandovers,
		100*f.OneShot.SeamlessFraction())
	fmt.Fprintf(&b, "  simultaneous-handover reduction: %.1fx\n", f.BurstReductionFactor)
	fmt.Fprintf(&b, "  %4s %10s %10s %10s %6s\n", "step", "utility", "handovers", "seamless", "comp")
	for i, s := range f.Gradual.Steps {
		mark := ""
		if s.UpgradeStep {
			mark = "  <- upgrade"
		}
		fmt.Fprintf(&b, "  %4d %10.1f %10.0f %10.0f %6d%s\n",
			i, s.Utility, s.Handovers, s.Seamless, s.Compensations, mark)
	}
	return b.String()
}
