package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadBenchJSONSkipsNotes(t *testing.T) {
	path := writeTemp(t, "old.json", `[
		{"name": "BenchmarkSpeculate/speculate", "iterations": 10, "ns_per_op": 164000},
		{"name": "_note", "iterations": 0, "ns_per_op": 0, "note": "context"},
		{"name": "BenchmarkSpeculate/batch-fixed", "iterations": 100, "ns_per_op": 15000}
	]`)
	recs, err := readBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (note skipped): %+v", len(recs), recs)
	}
	if recs[0].Name != "BenchmarkSpeculate/speculate" || recs[0].NsPerOp != 164000 {
		t.Errorf("first record = %+v", recs[0])
	}
}

func TestReadBenchGoTestOutput(t *testing.T) {
	path := writeTemp(t, "new.txt", `goos: linux
goarch: amd64
pkg: magus
BenchmarkSpeculate/speculate-4         	    6942	    176307 ns/op
BenchmarkSpeculate/batch-fixed-4       	   85191	     15238 ns/op	       0 B/op	       0 allocs/op
PASS
`)
	recs, err := readBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].Name != "BenchmarkSpeculate/speculate" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", recs[0].Name)
	}
	if recs[1].NsPerOp != 15238 || recs[1].Iterations != 85191 {
		t.Errorf("second record = %+v", recs[1])
	}
}

func TestCompareBenchDeltas(t *testing.T) {
	old := []benchRecord{
		{Name: "a", NsPerOp: 1000},
		{Name: "b", NsPerOp: 2000},
		{Name: "gone", NsPerOp: 5},
	}
	cur := []benchRecord{
		{Name: "a", NsPerOp: 1500},
		{Name: "b", NsPerOp: 1000},
		{Name: "fresh", NsPerOp: 7},
	}
	matched, oldOnly, newOnly := compareBench(old, cur)
	if len(matched) != 2 {
		t.Fatalf("matched = %+v", matched)
	}
	if matched[0].deltaPct != 50 {
		t.Errorf("a delta = %v, want +50", matched[0].deltaPct)
	}
	if matched[1].deltaPct != -50 {
		t.Errorf("b delta = %v, want -50", matched[1].deltaPct)
	}
	if len(oldOnly) != 1 || oldOnly[0] != "gone" {
		t.Errorf("oldOnly = %v", oldOnly)
	}
	if len(newOnly) != 1 || newOnly[0] != "fresh" {
		t.Errorf("newOnly = %v", newOnly)
	}
}

func TestRunCompareGate(t *testing.T) {
	old := writeTemp(t, "old.json", `[
		{"name": "BenchmarkX/hot", "iterations": 1, "ns_per_op": 1000},
		{"name": "BenchmarkX/cold", "iterations": 1, "ns_per_op": 1000}
	]`)
	// hot regresses 50%, cold improves.
	cur := writeTemp(t, "new.json", `[
		{"name": "BenchmarkX/hot", "iterations": 1, "ns_per_op": 1500},
		{"name": "BenchmarkX/cold", "iterations": 1, "ns_per_op": 500}
	]`)
	if code := runCompare([]string{old, cur}, "", 20); code != 0 {
		t.Errorf("ungated compare exit = %d, want 0", code)
	}
	if code := runCompare([]string{old, cur}, "BenchmarkX/hot", 20); code != 1 {
		t.Errorf("gated regression exit = %d, want 1", code)
	}
	if code := runCompare([]string{old, cur}, "BenchmarkX/hot", 60); code != 0 {
		t.Errorf("within-threshold exit = %d, want 0", code)
	}
	if code := runCompare([]string{old, cur}, "BenchmarkNoSuch", 20); code != 2 {
		t.Errorf("gate matching nothing exit = %d, want 2", code)
	}
	if code := runCompare([]string{old}, "", 20); code != 2 {
		t.Errorf("missing file arg exit = %d, want 2", code)
	}
}
