// Command magusctl plans a single upgrade mitigation end to end, the
// operator-facing workflow of the paper: pick an area, an upgrade
// scenario and a tuning method; magusctl prints the recovery accounting,
// the tuning steps that produce C_after, and (with -migrate) the gradual
// migration schedule that avoids synchronized handovers.
//
// Usage:
//
//	magusctl [-class suburban] [-scenario a] [-method joint]
//	         [-seed 1] [-utility performance] [-migrate] [-reactive]
//	         [-data market.json] [-data-policy repair] [-export-data market.json]
//
// With -data, the engine plans from an operational dataset (sanitized
// under -data-policy) instead of its synthetic link budgets;
// -export-data writes the engine's own data in that exchange format.
//
// The campaign subcommand instead drives a running magusd: it submits
// the cross-product of its -classes/-scenarios/-methods/-seeds flags as
// one asynchronous campaign and polls until every job finishes:
//
//	magusctl campaign [-server http://localhost:8080] [-classes rural,suburban,urban]
//	                  [-scenarios a,b,c] [-methods power,tilt,joint] [-seeds 1]
//
// The simulate subcommand executes the planned runbook through magusd's
// upgrade-window simulator, optionally with faults and replanning:
//
//	magusctl simulate [-server http://localhost:8080] [-scenario a] [-method joint]
//	                  [-faults "push-fail@2,sector-down@20:17"] [-diurnal] [-replan] [-series]
//
// The wave subcommand plans a whole upgrade season through magusd's
// wave scheduler (see internal/waveplan):
//
//	magusctl wave plan   [-server ...] [-class suburban] [-seed 1] [-crews 4]
//	                     [-blackout 0,2] [-replay] [-faults "sector-down@2:17"]
//	magusctl wave status -id <id> [-server ...]
//
// The execute subcommand drives the planned runbook through magusd's
// guarded executor — checkpointed pushes, KPI watchdog, auto-rollback:
//
//	magusctl execute run    [-server ...] [-scenario a] [-method joint]
//	                        [-chaos "push-error@2x2,kpi-breach@3"]
//	magusctl execute status -id <id> [-server ...]
//
// Exit codes, for every subcommand:
//
//	0  success — the requested work completed (and, for wave/execute,
//	   no halt: the season ran through / every step verified)
//	1  reserved for flag parsing errors (flag.ExitOnError)
//	2  domain failure — bad arguments, a rejected request, a failed or
//	   cancelled job, a halted season, or a halted-with-rollback run
//	   (the guard stopped the upgrade; the network was restored)
//	3  transient exhaustion — the server stayed unreachable, draining
//	   or overloaded through every client-side retry (see retry.go)
package main

import (
	"flag"
	"fmt"
	"os"

	"magus"
	"magus/internal/experiments"
	"magus/internal/impact"
	"magus/internal/runbook"
	"magus/internal/schedule"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "campaign" {
		runCampaign(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "simulate" {
		runSimulate(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		runFleet(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "wave" {
		runWave(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "execute" {
		runExecute(os.Args[2:])
		return
	}
	classFlag := flag.String("class", "suburban", "area class: rural, suburban, urban")
	scenarioFlag := flag.String("scenario", "a", "upgrade scenario: a (single sector), b (full site), c (four corners)")
	methodFlag := flag.String("method", "joint", "tuning method: power, tilt, joint, naive, anneal")
	utilFlag := flag.String("utility", "performance", "objective: performance, coverage")
	seed := flag.Int64("seed", 1, "market seed")
	migrateFlag := flag.Bool("migrate", false, "print the gradual migration schedule")
	runbookFlag := flag.String("runbook", "", "emit an operator runbook: 'text' or 'json'")
	reactiveFlag := flag.Bool("reactive", false, "compare against the reactive feedback baseline")
	assessFlag := flag.Bool("assess", false, "print the per-sector impact assessment of the unmitigated upgrade")
	windowFlag := flag.Int("window", 0, "rank upgrade start times for a work window of this many hours")
	workersFlag := flag.Int("workers", 0, "in-search candidate-scoring parallelism (0 = exact sequential search)")
	fixedFlag := flag.Bool("fixed", false, "score candidates on the batched fixed-point path (shared state, centi-dB inner loop)")
	dataFlag := flag.String("data", "", "operational dataset JSON to plan from (see -export-data)")
	dataPolicyFlag := flag.String("data-policy", "repair", "sanitizer policy for -data: strict, repair, quarantine")
	exportFlag := flag.String("export-data", "", "write the engine's operational dataset to this file and exit")
	modelCacheFlag := flag.String("model-cache", "", "directory for on-disk model snapshots; repeat invocations over the same market skip the model build")
	flag.Parse()
	experiments.SetSearchWorkers(*workersFlag)
	experiments.SetFixedPointScoring(*fixedFlag)
	if err := experiments.SetModelCacheDir(*modelCacheFlag); err != nil {
		fail("model cache: %v", err)
	}

	class, ok := map[string]magus.AreaClass{
		"rural": magus.Rural, "suburban": magus.Suburban, "urban": magus.Urban,
	}[*classFlag]
	if !ok {
		fail("unknown class %q", *classFlag)
	}
	scenario, ok := map[string]magus.Scenario{
		"a": magus.SingleSector, "b": magus.FullSite, "c": magus.FourCorners,
	}[*scenarioFlag]
	if !ok {
		fail("unknown scenario %q", *scenarioFlag)
	}
	method, ok := map[string]magus.Method{
		"power": magus.PowerOnly, "tilt": magus.TiltOnly,
		"joint": magus.Joint, "naive": magus.NaiveBaseline,
		"anneal": magus.Annealed,
	}[*methodFlag]
	if !ok {
		fail("unknown method %q", *methodFlag)
	}
	util, ok := map[string]magus.UtilityFunc{
		"performance": magus.Performance, "coverage": magus.Coverage,
	}[*utilFlag]
	if !ok {
		fail("unknown utility %q", *utilFlag)
	}

	fmt.Printf("building %s market (seed %d)...\n", class, *seed)
	engine, err := experiments.BuildEngine(*seed, experiments.DefaultAreaSpec(class))
	if err != nil {
		fail("build engine: %v", err)
	}

	if *dataFlag != "" {
		policy, err := magus.ParseSanitizePolicy(*dataPolicyFlag)
		if err != nil {
			fail("%v", err)
		}
		ds, err := magus.LoadDataset(*dataFlag)
		if err != nil {
			fail("load dataset: %v", err)
		}
		rep, err := engine.UseDataset(ds, policy)
		if err != nil {
			if rep != nil {
				fail("dataset rejected: %v (%d defects)", err, rep.Found)
			}
			fail("dataset: %v", err)
		}
		fmt.Printf("dataset %s: policy %s, %d defects found, %d repaired, %d sectors quarantined\n",
			*dataFlag, rep.Policy, rep.Found, rep.Repaired, len(rep.Quarantined))
		for i, is := range rep.Issues {
			if i >= 5 {
				fmt.Printf("  ... %d more issues\n", rep.Found-5)
				break
			}
			fmt.Printf("  %s sector %d -> %s: %s\n", is.Kind, is.Sector, is.Action, is.Detail)
		}
	}

	if *exportFlag != "" {
		if err := magus.SaveDataset(*exportFlag, engine.ExportDataset()); err != nil {
			fail("export dataset: %v", err)
		}
		fmt.Printf("wrote operational dataset to %s\n", *exportFlag)
		return
	}

	plan, err := engine.Mitigate(scenario, method, util)
	if err != nil {
		fail("mitigate: %v", err)
	}

	fmt.Printf("\nupgrade %s, tuning %s, objective %s\n", plan.Scenario, plan.Method, plan.Util.Name)
	fmt.Printf("  target sectors:   %v\n", plan.Targets)
	fmt.Printf("  neighbor set:     %d sectors within %.0f m\n",
		len(plan.Neighbors), engine.NeighborRadius())
	fmt.Printf("  f(C_before):      %.1f\n", plan.UtilityBefore)
	fmt.Printf("  f(C_upgrade):     %.1f\n", plan.UtilityUpgrade)
	fmt.Printf("  f(C_after):       %.1f\n", plan.UtilityAfter)
	fmt.Printf("  recovery ratio:   %.1f%%\n", 100*plan.RecoveryRatio())
	fmt.Printf("  search: %d steps, %d model evaluations\n",
		len(plan.Search.Steps), plan.Search.Evaluations)
	if st := plan.Search.Stats; st.Workers > 1 {
		fmt.Printf("  engine: %d workers, %d delta / %d full evals, %.0f%% worker utilization\n",
			st.Workers, st.DeltaEvaluations, st.FullEvaluations, 100*st.WorkerUtilization)
	}
	for i, st := range plan.Search.Steps {
		if i >= 10 {
			fmt.Printf("    ... %d more steps\n", len(plan.Search.Steps)-10)
			break
		}
		fmt.Printf("    step %2d: %-28s utility %.1f\n", i+1, st.Change, st.Utility)
	}

	if *runbookFlag != "" {
		mig, err := plan.GradualMigration(magus.MigrationOptions{})
		if err != nil {
			fail("migrate: %v", err)
		}
		rb, err := runbook.Build(plan, mig)
		if err != nil {
			fail("runbook: %v", err)
		}
		fmt.Println()
		switch *runbookFlag {
		case "text":
			if err := rb.WriteText(os.Stdout); err != nil {
				fail("runbook: %v", err)
			}
		case "json":
			if err := rb.WriteJSON(os.Stdout); err != nil {
				fail("runbook: %v", err)
			}
		default:
			fail("unknown runbook format %q (want text or json)", *runbookFlag)
		}
	}

	if *migrateFlag {
		mig, err := plan.GradualMigration(magus.MigrationOptions{})
		if err != nil {
			fail("migrate: %v", err)
		}
		fmt.Printf("\ngradual migration: %d steps, max burst %.0f UEs, %.1f%% seamless, floor %.1f (target %.1f)\n",
			len(mig.Steps), mig.MaxSimultaneousHandovers,
			100*mig.SeamlessFraction(), mig.UtilityFloor, mig.AfterUtility)
		for i, s := range mig.Steps {
			mark := ""
			if s.UpgradeStep {
				mark = "  <- target off-air"
			}
			fmt.Printf("  step %2d: utility %.1f, %4.0f handovers (%4.0f seamless), %d compensations%s\n",
				i+1, s.Utility, s.Handovers, s.Seamless, s.Compensations, mark)
		}
	}

	if *assessFlag {
		before := impact.Take(engine.Before)
		unmitigated := impact.Take(plan.Upgrade)
		mitigated := impact.Take(plan.After)
		repRaw, err := impact.Assess(before, unmitigated, impact.Thresholds{})
		if err != nil {
			fail("assess: %v", err)
		}
		repMit, err := impact.Assess(before, mitigated, impact.Thresholds{})
		if err != nil {
			fail("assess: %v", err)
		}
		fmt.Printf("\nimpact without mitigation:\n%s", repRaw)
		fmt.Printf("\nimpact with Magus mitigation:\n%s", repMit)
	}

	if *windowFlag > 0 {
		rec, err := schedule.Plan(plan, schedule.DefaultProfile(), *windowFlag)
		if err != nil {
			fail("schedule: %v", err)
		}
		fmt.Printf("\n%s", rec)
		best := rec.Best()
		fmt.Printf("recommended start: %02d:00 (mean load %.2f)\n", best.StartHour, best.LoadFactor)
	}

	if *reactiveFlag {
		ideal, err := plan.ReactiveBaseline(magus.FeedbackIdealized, magus.FeedbackOptions{})
		if err != nil {
			fail("reactive: %v", err)
		}
		realistic, err := plan.ReactiveBaseline(magus.FeedbackRealistic, magus.FeedbackOptions{})
		if err != nil {
			fail("reactive: %v", err)
		}
		fmt.Printf("\nreactive feedback baseline (starts AFTER the sector is down):\n")
		fmt.Printf("  idealized: %d tuning steps to converge\n", ideal.Steps)
		fmt.Printf("  realistic: %d measurement rounds = %.1f h at 5 min each\n",
			realistic.Measurements, realistic.TimeSeconds/3600)
		fmt.Printf("  proactive Magus: 0 post-upgrade steps (C_after applied beforehand)\n")
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "magusctl: "+format+"\n", args...)
	os.Exit(2)
}
