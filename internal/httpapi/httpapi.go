// Package httpapi exposes a Magus engine as an HTTP service — the shape
// in which a network operations center would actually consume it: a
// long-lived daemon that owns the (expensive) market model and answers
// planning queries over JSON.
//
// Endpoints:
//
//	GET  /healthz                          liveness, market summary, campaign metrics
//	GET  /sectors                          the topology as GeoJSON
//	GET  /coverage                         the baseline serving map as GeoJSON
//	GET  /plan?scenario=a&method=joint     plan a mitigation
//	GET  /runbook?scenario=a&method=joint  full runbook (steps + rollback)
//	GET  /simulate?scenario=a&faults=...   execute the runbook through the window simulator
//	GET  /outage?sector=12                 respond to an unplanned outage
//	GET  /schedule?scenario=a&hours=5      rank upgrade start times
//	POST /waves                            schedule an upgrade season (wave scheduler)
//	GET  /waves/{id}                       season status + per-wave results
//	POST /execute                          run a runbook through the guarded executor
//	GET  /execute/{id}                     run status + per-step progress
//	POST /campaigns                        submit a batch of planning jobs
//	GET  /campaigns                        list campaigns
//	GET  /campaigns/{id}                   campaign status + incremental results
//	POST /campaigns/{id}/cancel            cancel a campaign
//
// The synchronous endpoints plan against the server's own engine; a
// campaign job names its market (class + seed) and is planned against an
// engine from the shared single-flight cache, so concurrent jobs on the
// same market pay one build. Handlers are read-only with respect to any
// engine (every plan works on clones) and honor request contexts: a
// disconnected client cancels its in-flight search.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"magus/internal/campaign"
	"magus/internal/core"
	"magus/internal/evalengine"
	"magus/internal/executor"
	"magus/internal/experiments"
	"magus/internal/export"
	"magus/internal/fleet"
	"magus/internal/migrate"
	"magus/internal/outageplan"
	"magus/internal/runbook"
	"magus/internal/schedule"
	"magus/internal/simwindow"
	"magus/internal/topology"
	"magus/internal/upgrade"
	"magus/internal/utility"
	"magus/internal/waveplan"
)

// Wire-name tables shared by the query-parameter and campaign-body
// parsers, so the two surfaces cannot drift apart.
var (
	classByName = map[string]topology.AreaClass{
		"rural": topology.Rural, "suburban": topology.Suburban, "urban": topology.Urban,
	}
	scenarioByName = map[string]upgrade.Scenario{
		"": upgrade.SingleSector, "a": upgrade.SingleSector,
		"b": upgrade.FullSite, "c": upgrade.FourCorners,
	}
	methodByName = map[string]core.Method{
		"": core.Joint, "power": core.PowerOnly, "tilt": core.TiltOnly,
		"joint": core.Joint, "naive": core.NaiveBaseline, "anneal": core.Annealed,
	}
)

// Server wraps an engine with HTTP handlers. Construct with NewServer;
// it implements http.Handler.
type Server struct {
	engine  *core.Engine
	orch    *campaign.Orchestrator
	mux     *http.ServeMux
	anchor  export.Anchor
	nodeID  string
	started time.Time

	// coord, when set, makes this server the fleet coordinator: the
	// /fleet/* control endpoints come up and /campaigns fans out across
	// the fleet instead of the local orchestrator.
	coord *fleet.Coordinator

	// exec owns the asynchronous guarded runbook runs behind /execute.
	exec *executor.Manager

	// marketEpochs is the worker-side fencing memory: the highest lease
	// epoch seen per market on POST /fleet/jobs. A dispatch under a lower
	// epoch is a delayed replay of a superseded lease and is refused.
	fleetMu      sync.Mutex
	marketEpochs map[string]int64

	// planner is built lazily (and exactly once) on the first /outage
	// request; precomputation takes seconds.
	plannerOnce sync.Once
	planner     *outageplan.Planner
	plannerErr  error

	// draining stops admission of new planning work (see BeginDrain)
	// while status endpoints keep answering.
	draining atomic.Bool
}

// Options tune optional server subsystems.
type Options struct {
	// Orchestrator overrides the campaign orchestrator (tests inject one
	// with miniature markets). Nil builds the default: a worker pool over
	// the experiment areas, sharing the process-wide engine cache.
	Orchestrator *campaign.Orchestrator
	// NodeID is the process's stable fleet identity, reported by
	// /healthz; empty generates a fresh (unpersisted) one.
	NodeID string
	// Coordinator, when set, runs this server in coordinator mode: the
	// /fleet control surface is exposed and /campaigns submissions are
	// sharded across the fleet rather than run locally.
	Coordinator *fleet.Coordinator
	// ExecDir, when non-empty, journals each /execute run to its own
	// write-ahead log under this directory so checkpoints survive the
	// process; empty runs /execute unjournaled (guarded, no recovery).
	ExecDir string
}

// NewServer builds the handler tree around an engine with defaults.
func NewServer(engine *core.Engine) *Server { return New(engine, Options{}) }

// New builds the handler tree around an engine.
func New(engine *core.Engine, opts Options) *Server {
	s := &Server{
		engine:       engine,
		orch:         opts.Orchestrator,
		mux:          http.NewServeMux(),
		anchor:       export.Anchor{LatDeg: 40.7, LonDeg: -74.0},
		nodeID:       opts.NodeID,
		started:      time.Now(),
		coord:        opts.Coordinator,
		exec:         executor.NewManager(opts.ExecDir),
		marketEpochs: make(map[string]int64),
	}
	if s.nodeID == "" {
		s.nodeID = fleet.NewNodeID()
	}
	if s.orch == nil {
		var err error
		s.orch, err = campaign.New(campaign.Config{
			Build: func(_ context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
				return experiments.BuildEngine(seed, experiments.DefaultAreaSpec(class))
			},
			Cache: experiments.SharedEngineCache(),
		})
		if err != nil {
			panic(err) // only reachable on a nil Build, which we set
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /sectors", s.handleSectors)
	s.mux.HandleFunc("GET /coverage", s.handleCoverage)
	s.mux.HandleFunc("GET /plan", s.handlePlan)
	s.mux.HandleFunc("GET /runbook", s.handleRunbook)
	s.mux.HandleFunc("GET /simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /outage", s.handleOutage)
	s.mux.HandleFunc("GET /schedule", s.handleSchedule)
	// The wave surface is served in both modes; submission routes to the
	// local orchestrator or across the fleet like /campaigns does.
	s.mux.HandleFunc("POST /waves", s.handleWaveSubmit)
	s.mux.HandleFunc("GET /waves/{id}", s.handleWaveStatus)
	// The execute surface runs guarded runbooks against this node's own
	// market in both modes (cross-market execution rides /campaigns
	// with kind "execute").
	s.mux.HandleFunc("POST /execute", s.handleExecuteSubmit)
	s.mux.HandleFunc("GET /execute/{id}", s.handleExecuteStatus)
	if s.coord != nil {
		// Coordinator mode: the campaign surface fans out across the
		// fleet, and the fleet control endpoints come up.
		s.mux.HandleFunc("POST /campaigns", s.handleFleetSubmit)
		s.mux.HandleFunc("GET /campaigns", s.handleFleetList)
		s.mux.HandleFunc("GET /campaigns/{id}", s.handleFleetCampaign)
		s.mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleFleetCancel)
		s.mux.HandleFunc("POST /fleet/join", s.handleFleetJoin)
		s.mux.HandleFunc("POST /fleet/heartbeat", s.handleFleetHeartbeat)
		s.mux.HandleFunc("POST /fleet/leave", s.handleFleetLeave)
		s.mux.HandleFunc("POST /fleet/drain", s.handleFleetDrain)
		s.mux.HandleFunc("POST /fleet/evict", s.handleFleetEvict)
		s.mux.HandleFunc("GET /fleet/status", s.handleFleetStatus)
	} else {
		s.mux.HandleFunc("POST /campaigns", s.handleCampaignSubmit)
		s.mux.HandleFunc("GET /campaigns", s.handleCampaignList)
		s.mux.HandleFunc("GET /campaigns/{id}", s.handleCampaignStatus)
		s.mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCampaignCancel)
		// Worker-side dispatch sink; epoch-fenced per market.
		s.mux.HandleFunc("POST /fleet/jobs", s.handleFleetDispatch)
	}
	return s
}

// Close stops the campaign worker pool, cancelling running campaigns.
func (s *Server) Close() { s.orch.Close() }

// Orchestrator exposes the server's campaign orchestrator (the daemon
// drains it on shutdown).
func (s *Server) Orchestrator() *campaign.Orchestrator { return s.orch }

// BeginDrain flips the server into drain mode: endpoints that admit new
// planning work answer 503 with a Retry-After header, while status and
// read-only endpoints (healthz, campaign status, cancel) keep working so
// operators and load balancers can watch the drain complete.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// drainRetryAfter is the Retry-After hint handed to refused clients: by
// then the replacement instance should be up.
const drainRetryAfter = "30"

// admit guards an admission endpoint. A refusal is written for the
// caller when the server is draining.
func (s *Server) admit(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return true
	}
	w.Header().Set("Retry-After", drainRetryAfter)
	httpError(w, http.StatusServiceUnavailable, "server is draining")
	return false
}

// maxBodyBytes caps request bodies: a campaign submission is a few KB,
// so anything over 1 MB is a client bug or abuse, not a bigger batch.
const maxBodyBytes = 1 << 20

// decodeBody decodes a JSON request body under the size cap, writing a
// structured error on failure: 413 for oversized bodies, 400 with the
// offending offset or field for malformed ones.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil && dec.More() {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "malformed JSON body", "detail": "trailing data after JSON value",
		})
		return false
	}
	if err == nil {
		return true
	}
	var maxErr *http.MaxBytesError
	var syntaxErr *json.SyntaxError
	var typeErr *json.UnmarshalTypeError
	switch {
	case errors.As(err, &maxErr):
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
	case errors.As(err, &syntaxErr):
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "malformed JSON body", "offset": syntaxErr.Offset, "detail": err.Error(),
		})
	case errors.As(err, &typeErr):
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "malformed JSON body", "field": typeErr.Field, "detail": err.Error(),
		})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "malformed JSON body", "detail": err.Error(),
		})
	}
	return false
}

// ServeHTTP dispatches to the handler tree.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits v with the proper content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are already out; nothing useful to do on error
}

// httpError reports a client or server error as JSON.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	resp := map[string]any{
		"status":    status,
		"node_id":   s.nodeID,
		"uptime_s":  time.Since(s.started).Seconds(),
		"class":     s.engine.Net.Class.String(),
		"sites":     len(s.engine.Net.Sites),
		"sectors":   s.engine.Net.NumSectors(),
		"users":     s.engine.Model.TotalUE(),
		"campaigns": s.orch.Metrics(),
	}
	if s.coord != nil {
		resp["role"] = "coordinator"
	}
	resp["executor"] = map[string]any{
		"active":   s.exec.Active(),
		"counters": s.exec.Counters().Snapshot(),
	}
	if mc := experiments.ModelCache(); mc != nil {
		resp["model_snapshots"] = mc.Stats()
	}
	resp["wave_scheduler"] = waveplan.Stats()
	if core := s.engine.Model.Core(); core != nil {
		// The immutable substrate behind this node's serving engine; refs
		// counts every Model sharing it (campaign engines appear under
		// campaigns.engine_cache.shared_cores as well).
		resp["shared_core"] = map[string]any{
			"refs":  core.Refs(),
			"bytes": core.Bytes(),
		}
	}
	if rep := s.engine.Sanitation(); rep != nil {
		resp["sanitation"] = map[string]any{
			"policy":      rep.Policy,
			"clean":       rep.Clean,
			"found":       rep.Found,
			"repaired":    rep.Repaired,
			"quarantined": len(rep.Quarantined),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSectors(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/geo+json")
	if err := export.TopologyGeoJSON(w, s.engine.Net, s.anchor); err != nil {
		httpError(w, http.StatusInternalServerError, "export: %v", err)
	}
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	stride := 1
	if v := r.URL.Query().Get("stride"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad stride %q", v)
			return
		}
		stride = n
	}
	w.Header().Set("Content-Type", "application/geo+json")
	if err := export.CoverageGeoJSON(w, s.engine.Before, s.anchor, stride); err != nil {
		httpError(w, http.StatusInternalServerError, "export: %v", err)
	}
}

// planParams parses the shared scenario/method/utility/workers/fixed
// query parameters.
func planParams(r *http.Request) (upgrade.Scenario, core.Method, utility.Func, int, bool, error) {
	scenario, ok := scenarioByName[r.URL.Query().Get("scenario")]
	if !ok {
		return 0, 0, utility.Func{}, 0, false, fmt.Errorf("unknown scenario %q", r.URL.Query().Get("scenario"))
	}
	method, ok := methodByName[r.URL.Query().Get("method")]
	if !ok {
		return 0, 0, utility.Func{}, 0, false, fmt.Errorf("unknown method %q", r.URL.Query().Get("method"))
	}
	util, ok := campaign.UtilityByName[r.URL.Query().Get("utility")]
	if !ok {
		return 0, 0, utility.Func{}, 0, false, fmt.Errorf("unknown utility %q", r.URL.Query().Get("utility"))
	}
	workers := 0
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, utility.Func{}, 0, false, fmt.Errorf("bad workers %q", v)
		}
		workers = n
	}
	fixed := false
	switch v := r.URL.Query().Get("fixed"); v {
	case "", "0", "false":
	case "1", "true":
		fixed = true
	default:
		return 0, 0, utility.Func{}, 0, false, fmt.Errorf("bad fixed %q", v)
	}
	return scenario, method, util, workers, fixed, nil
}

// planResponse is the JSON shape of a mitigation plan.
type planResponse struct {
	Scenario       string  `json:"scenario"`
	Method         string  `json:"method"`
	Targets        []int   `json:"targets"`
	Neighbors      int     `json:"neighbors"`
	UtilityBefore  float64 `json:"utility_before"`
	UtilityUpgrade float64 `json:"utility_upgrade"`
	UtilityAfter   float64 `json:"utility_after"`
	Recovery       float64 `json:"recovery"`
	SearchSteps    int     `json:"search_steps"`
	Evaluations    int     `json:"evaluations"`
	// Search carries the engine's counters (delta vs full evaluations,
	// worker utilization) for the plan's search.
	Search evalengine.StatsSnapshot `json:"search"`
}

// plan runs a mitigation for the request's parameters under the
// request's context, so a disconnected client abandons the search.
func (s *Server) plan(r *http.Request) (*core.Plan, error) {
	scenario, method, util, workers, fixed, err := planParams(r)
	if err != nil {
		return nil, err
	}
	return s.engine.MitigatePlan(core.MitigateRequest{
		Ctx:        r.Context(),
		Scenario:   scenario,
		Method:     method,
		Util:       util,
		Workers:    workers,
		FixedPoint: fixed,
	})
}

// planStatus maps a planning error to an HTTP status: parameter errors
// are the client's fault, a cancelled context is the client hanging up.
func planStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	plan, err := s.plan(r)
	if err != nil {
		httpError(w, planStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, planResponse{
		Scenario:       plan.Scenario.String(),
		Method:         plan.Method.String(),
		Targets:        plan.Targets,
		Neighbors:      len(plan.Neighbors),
		UtilityBefore:  plan.UtilityBefore,
		UtilityUpgrade: plan.UtilityUpgrade,
		UtilityAfter:   plan.UtilityAfter,
		Recovery:       plan.RecoveryRatio(),
		SearchSteps:    len(plan.Search.Steps),
		Evaluations:    plan.Search.Evaluations,
		Search:         plan.Search.Stats,
	})
}

func (s *Server) handleRunbook(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	plan, err := s.plan(r)
	if err != nil {
		httpError(w, planStatus(err), "%v", err)
		return
	}
	mig, err := plan.GradualMigration(migrate.Options{})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "migrate: %v", err)
		return
	}
	rb, err := runbook.Build(plan, mig)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "runbook: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, rb)
}

// handleSimulate plans the mitigation, builds its runbook, and executes
// it through the upgrade-window simulator. Beyond the /plan parameters
// it accepts:
//
//	ticks       window length (default: one tick per push + settle)
//	sim_seed    simulator seed (load noise)
//	faults      fault script, e.g. "push-fail@2,sector-down@20:17"
//	diurnal=1   evolve load along the default diurnal profile
//	noise       per-tick lognormal load jitter sigma
//	start_hour  local hour at tick 0
//	replan=1    enable the search-based replanner on floor breaches
//	series=1    include the full per-tick series in the response
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	q := r.URL.Query()
	cfg := simwindow.Config{Ctx: r.Context()}
	var err error
	if cfg.Faults, err = simwindow.ParseFaults(q.Get("faults")); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	intParam := func(name string, dst *int) bool {
		v := q.Get(name)
		if v == "" {
			return true
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad %s %q", name, v)
			return false
		}
		*dst = n
		return true
	}
	floatParam := func(name string, dst *float64) bool {
		v := q.Get(name)
		if v == "" {
			return true
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			httpError(w, http.StatusBadRequest, "bad %s %q", name, v)
			return false
		}
		*dst = f
		return true
	}
	if !intParam("ticks", &cfg.Ticks) ||
		!floatParam("noise", &cfg.LoadNoise) ||
		!floatParam("start_hour", &cfg.StartHour) {
		return
	}
	if v := q.Get("sim_seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad sim_seed %q", v)
			return
		}
		cfg.Seed = seed
	}
	if q.Get("diurnal") == "1" {
		profile := schedule.DefaultProfile()
		cfg.Profile = &profile
	}
	if q.Get("replan") == "1" {
		cfg.Replanner = &simwindow.SearchReplanner{}
	}

	plan, err := s.plan(r)
	if err != nil {
		httpError(w, planStatus(err), "%v", err)
		return
	}
	cfg.Workers, _ = strconv.Atoi(q.Get("workers")) // validated by planParams
	mig, err := plan.GradualMigration(migrate.Options{})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "migrate: %v", err)
		return
	}
	rb, err := runbook.Build(plan, mig)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "runbook: %v", err)
		return
	}
	sim, err := simwindow.New(s.engine.Before, rb, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "simulate: %v", err)
		return
	}
	out, err := sim.Run()
	if err != nil {
		httpError(w, planStatus(err), "simulate: %v", err)
		return
	}
	resp := map[string]any{
		"scenario": plan.Scenario.String(),
		"method":   plan.Method.String(),
		"steps":    len(rb.Steps),
		"summary":  out.Summary,
	}
	if q.Get("series") == "1" {
		resp["series"] = out.Series
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	plan, err := s.plan(r)
	if err != nil {
		httpError(w, planStatus(err), "%v", err)
		return
	}
	hours := 5
	if v := r.URL.Query().Get("hours"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad hours %q", v)
			return
		}
		hours = n
	}
	rec, err := schedule.Plan(plan, schedule.DefaultProfile(), hours)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"duration_hours": hours,
		"best_start":     rec.Best().StartHour,
		"windows":        rec.Windows,
	})
}

func (s *Server) handleOutage(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	sector, err := strconv.Atoi(r.URL.Query().Get("sector"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sector %q", r.URL.Query().Get("sector"))
		return
	}
	if sector < 0 || sector >= s.engine.Net.NumSectors() {
		httpError(w, http.StatusNotFound, "sector %d out of range", sector)
		return
	}
	s.plannerOnce.Do(func() {
		// Lazy one-time precomputation; subsequent outages are lookups.
		// Deliberately not bound to r.Context(): the table outlives this
		// request, and one impatient client must not poison it for all.
		s.planner, s.plannerErr = outageplan.New(s.engine, nil, outageplan.Options{})
	})
	if s.plannerErr != nil {
		httpError(w, http.StatusInternalServerError, "outage planning: %v", s.plannerErr)
		return
	}
	resp, err := s.planner.RespondContext(r.Context(), sector, 3)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = 499
		}
		httpError(w, status, "respond: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sector":           sector,
		"precomputed":      resp.Precomputed,
		"utility_outage":   resp.UtilityOutage,
		"utility_applied":  resp.UtilityApplied,
		"utility_refined":  resp.UtilityRefined,
		"refinement_steps": resp.RefinementSteps,
	})
}

// campaignJobRequest is the wire form of one job in a POST /campaigns
// body. Names reuse the /plan query vocabulary (scenario a|b|c, method
// power|tilt|joint|naive|anneal, utility performance|coverage).
type campaignJobRequest struct {
	Class     string `json:"class"`
	Seed      int64  `json:"seed"`
	Scenario  string `json:"scenario"`
	Method    string `json:"method"`
	Utility   string `json:"utility"`
	TimeoutMS int64  `json:"timeout_ms"`
	// Workers is the in-search scoring parallelism (0 = orchestrator
	// default, which keeps the exact sequential path).
	Workers int `json:"workers"`
	// FixedPoint scores candidates on the batched quantized path.
	FixedPoint bool `json:"fixed_point"`
	// AnnealSeed seeds the anneal method's random walk (0 = default).
	AnnealSeed int64 `json:"anneal_seed"`
	// Kind is "plan" (default), "simulate", "wave" or "execute"; Sim
	// tunes simulate jobs, Wave tunes wave jobs, Exec tunes execute
	// jobs.
	Kind string             `json:"kind"`
	Sim  *campaign.SimSpec  `json:"sim"`
	Wave *campaign.WaveSpec `json:"wave"`
	Exec *campaign.ExecSpec `json:"exec"`
}

type campaignRequest struct {
	Jobs []campaignJobRequest `json:"jobs"`
}

// parseCampaignSpecs decodes and validates a POST /campaigns body,
// writing the error response itself on failure. Shared by the local
// orchestrator path and the fleet coordinator path so the two surfaces
// accept exactly the same wire format.
func parseCampaignSpecs(w http.ResponseWriter, r *http.Request) ([]campaign.JobSpec, bool) {
	var req campaignRequest
	if !decodeBody(w, r, &req) {
		return nil, false
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "campaign has no jobs")
		return nil, false
	}
	specs := make([]campaign.JobSpec, len(req.Jobs))
	for i, jr := range req.Jobs {
		class, ok := classByName[jr.Class]
		if !ok {
			httpError(w, http.StatusBadRequest, "job %d: unknown class %q", i, jr.Class)
			return nil, false
		}
		scenario, ok := scenarioByName[jr.Scenario]
		if !ok {
			httpError(w, http.StatusBadRequest, "job %d: unknown scenario %q", i, jr.Scenario)
			return nil, false
		}
		method, ok := methodByName[jr.Method]
		if !ok {
			httpError(w, http.StatusBadRequest, "job %d: unknown method %q", i, jr.Method)
			return nil, false
		}
		if _, ok := campaign.UtilityByName[jr.Utility]; !ok {
			httpError(w, http.StatusBadRequest, "job %d: unknown utility %q", i, jr.Utility)
			return nil, false
		}
		if jr.TimeoutMS < 0 {
			httpError(w, http.StatusBadRequest, "job %d: negative timeout_ms", i)
			return nil, false
		}
		if jr.Workers < 0 {
			httpError(w, http.StatusBadRequest, "job %d: negative workers", i)
			return nil, false
		}
		specs[i] = campaign.JobSpec{
			Class:      class,
			Seed:       jr.Seed,
			Scenario:   scenario,
			Method:     method,
			Utility:    jr.Utility,
			Timeout:    time.Duration(jr.TimeoutMS) * time.Millisecond,
			Workers:    jr.Workers,
			FixedPoint: jr.FixedPoint,
			AnnealSeed: jr.AnnealSeed,
			Kind:       jr.Kind,
			Sim:        jr.Sim,
			Wave:       jr.Wave,
			Exec:       jr.Exec,
		}
	}
	return specs, true
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	specs, ok := parseCampaignSpecs(w, r)
	if !ok {
		return
	}
	c, err := s.orch.Submit(specs)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, campaign.ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		if errors.Is(err, campaign.ErrDraining) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", drainRetryAfter)
		}
		httpError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/campaigns/"+c.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": c.ID, "jobs": len(specs)})
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"campaigns": s.orch.CampaignIDs(),
		"metrics":   s.orch.Metrics(),
	})
}

// lookupCampaign resolves {id} or writes a 404.
func (s *Server) lookupCampaign(w http.ResponseWriter, r *http.Request) (*campaign.Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.orch.Lookup(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
	}
	return c, ok
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookupCampaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"campaign": c.Snapshot(),
		"metrics":  s.orch.Metrics(),
	})
}

func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookupCampaign(w, r)
	if !ok {
		return
	}
	c.Cancel("client request")
	writeJSON(w, http.StatusOK, map[string]any{"campaign": c.Snapshot()})
}
