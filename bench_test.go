// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md and micro-benchmarks of the model's hot paths.
//
// The experiment benchmarks report the reproduced headline quantity of
// their artifact as a custom metric (recovery ratios, burst reduction
// factors, step counts) so `go test -bench` output doubles as a results
// table. Engines are memoized across iterations, so the first iteration
// pays the market construction cost and later ones measure the
// experiment itself.
package magus_test

import (
	"fmt"
	"runtime"
	"testing"

	"magus/internal/config"
	"magus/internal/core"
	"magus/internal/experiments"
	"magus/internal/geo"
	"magus/internal/hybrid"
	"magus/internal/migrate"
	"magus/internal/modelcache"
	"magus/internal/netmodel"
	"magus/internal/outageplan"
	"magus/internal/propagation"
	"magus/internal/search"
	"magus/internal/signaling"
	"magus/internal/terrain"
	"magus/internal/testbed"
	"magus/internal/topology"
	"magus/internal/upgrade"
	"magus/internal/utility"
	"magus/internal/waveplan"
)

var benchSeeds = []int64{1}

// BenchmarkTable1 regenerates Table 1 (recovery ratio per area class,
// upgrade scenario and tuning method).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunTable1(experiments.Table1Options{Seeds: benchSeeds})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.MeanByClass(topology.Suburban, core.Joint), "suburban-joint-recovery")
		b.ReportMetric(tab.MeanByClass(topology.Rural, core.PowerOnly), "rural-power-recovery")
	}
}

// BenchmarkTable2 regenerates Table 2 (cross-utility recovery matrix).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunTable2(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Recovery["performance"]["performance"], "perf-opt-perf-recovery")
		b.ReportMetric(tab.Recovery["coverage"]["coverage"], "cov-opt-cov-recovery")
	}
}

// BenchmarkFigure2Scenario1 regenerates the 2-eNodeB testbed experiment.
func BenchmarkFigure2Scenario1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.RunScenario(testbed.Scenario1(), testbed.Config{Seed: benchSeeds[0]}, testbed.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RecoveryRatio(), "recovery")
	}
}

// BenchmarkFigure2Scenario2 regenerates the 3-eNodeB interference-aware
// testbed experiment.
func BenchmarkFigure2Scenario2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.RunScenario(testbed.Scenario2(), testbed.Config{Seed: benchSeeds[0]}, testbed.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RecoveryRatio(), "recovery")
	}
}

// BenchmarkFigure8InterfererCounts regenerates the per-class density
// statistics and coverage maps.
func BenchmarkFigure8InterfererCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure8(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range fig.Rows {
			b.ReportMetric(float64(r.InterferingSectors), r.Class.String()+"-interferers")
		}
	}
}

// BenchmarkFigure10RuralLimit regenerates the rural +10 dB boost
// demonstration.
func BenchmarkFigure10RuralLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure10(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.RecoveredFraction, "coverage-recovered")
	}
}

// BenchmarkFigure11GradualTuning regenerates the gradual-vs-one-shot
// migration comparison.
func BenchmarkFigure11GradualTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure11(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.BurstReductionFactor, "burst-reduction-x")
		b.ReportMetric(fig.Gradual.SeamlessFraction(), "seamless-fraction")
	}
}

// BenchmarkFigure12Convergence regenerates the strategy convergence
// comparison.
func BenchmarkFigure12Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure12(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(fig.IdealizedSteps), "idealized-steps")
		b.ReportMetric(float64(fig.RealisticMeasurements), "realistic-measurements")
	}
}

// BenchmarkFigure13ImprovementCDF regenerates the Magus-vs-naive
// improvement ratio distribution.
func BenchmarkFigure13ImprovementCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure13(experiments.Figure13Options{Seeds: benchSeeds})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Summary.Mean, "mean-improvement")
		b.ReportMetric(fig.FractionAtLeastNaive, "fraction-at-least-naive")
	}
}

// BenchmarkCalendar regenerates the Section 1 planned-upgrade calendar
// statistics.
func BenchmarkCalendar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cal := experiments.RunCalendar(benchSeeds[0])
		b.ReportMetric(cal.Stats.TueFriRatio, "tue-fri-ratio")
	}
}

// BenchmarkMaps regenerates the Figure 3/4/5/7 map renderings.
func BenchmarkMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		maps, err := experiments.RunMaps(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(maps.ServedFraction, "served-fraction")
	}
}

// benchScenario prepares a reusable suburban upgrade for the ablation
// and micro benchmarks.
func benchScenario(b *testing.B) (*core.Engine, *core.Plan) {
	b.Helper()
	engine, err := experiments.BuildEngine(benchSeeds[0], experiments.DefaultAreaSpec(topology.Suburban))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := engine.Mitigate(upgrade.SingleSector, core.PowerOnly, utility.Performance)
	if err != nil {
		b.Fatal(err)
	}
	return engine, plan
}

// BenchmarkAblationPruning compares Algorithm 1 with the paper's
// candidate pruning against a variant that evaluates every neighbor
// each iteration (DESIGN.md ablation 1).
func BenchmarkAblationPruning(b *testing.B) {
	engine, plan := benchScenario(b)
	for _, mode := range []struct {
		name      string
		noPruning bool
	}{{"pruned", false}, {"unpruned", true}} {
		b.Run(mode.name, func(b *testing.B) {
			evals := 0
			for i := 0; i < b.N; i++ {
				work := plan.Upgrade.Clone()
				res, err := search.Power(work, engine.Before, plan.Neighbors,
					search.Options{NoPruning: mode.noPruning})
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Evaluations
				b.ReportMetric(res.FinalUtility, "final-utility")
			}
			b.ReportMetric(float64(evals), "model-evaluations")
		})
	}
}

// BenchmarkAblationIncremental compares the incremental single-sector
// re-evaluation against a full model recomputation per change
// (DESIGN.md ablation 2).
func BenchmarkAblationIncremental(b *testing.B) {
	engine, plan := benchScenario(b)
	neighbor := plan.Neighbors[0]
	b.Run("incremental", func(b *testing.B) {
		st := engine.Before.Clone()
		delta := 1.0
		for i := 0; i < b.N; i++ {
			if _, err := st.Apply(config.Change{Sector: neighbor, PowerDelta: delta}); err != nil {
				b.Fatal(err)
			}
			delta = -delta
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		cfg := engine.Before.Cfg.Clone()
		delta := 1.0
		for i := 0; i < b.N; i++ {
			cfg.AdjustPower(neighbor, delta)
			_ = engine.Model.NewState(cfg.Clone())
			delta = -delta
		}
	})
}

// BenchmarkAblationGradualStepSize sweeps the gradual migration's
// per-step power reduction (DESIGN.md ablation 4): finer steps trade
// migration length for smaller handover bursts.
func BenchmarkAblationGradualStepSize(b *testing.B) {
	engine, err := experiments.BuildEngine(benchSeeds[0], experiments.DefaultAreaSpec(topology.Suburban))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := engine.Mitigate(upgrade.FullSite, core.Joint, utility.Performance)
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []float64{1, 3, 6} {
		b.Run(map[float64]string{1: "1dB", 3: "3dB", 6: "6dB"}[step], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mig, err := plan.GradualMigration(migrate.Options{TargetStepDB: step})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mig.MaxSimultaneousHandovers, "max-burst")
				b.ReportMetric(float64(len(mig.Steps)), "steps")
			}
		})
	}
}

// BenchmarkModelBuild measures analysis-model construction (grid +
// contributor entries) for a suburban area, sequential versus parallel
// at two grid resolutions. The parallel build is bit-identical to the
// sequential one (netmodel's golden test enforces it), so the sub-
// benchmarks differ only in wall clock; the speedup needs real cores.
func BenchmarkModelBuild(b *testing.B) {
	engine, _ := benchScenario(b)
	region := engine.Net.Bounds
	parWorkers := runtime.NumCPU()
	if parWorkers < 4 {
		// Single-core machines still exercise the sharded code path; the
		// measured speedup is then ~1x by construction.
		parWorkers = 4
	}
	for _, grid := range []struct {
		name      string
		cellSizeM float64
	}{{"small-400m", 400}, {"medium-150m", 150}} {
		for _, w := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {fmt.Sprintf("par%d", parWorkers), parWorkers}} {
			b.Run(grid.name+"/"+w.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m, err := netmodel.NewModel(engine.Net, engine.SPM, region,
						netmodel.Params{CellSizeM: grid.cellSizeM, BuildWorkers: w.workers})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(m.NumContributors()), "contributors")
				}
			})
		}
	}
}

// BenchmarkModelSnapshotLoad compares a cold model build against
// reloading the same model from an on-disk snapshot — the cost a warm
// magusd restart pays per market with -model-cache set.
func BenchmarkModelSnapshotLoad(b *testing.B) {
	engine, _ := benchScenario(b)
	region := engine.Net.Bounds
	params := netmodel.Params{CellSizeM: 200}
	cache, err := modelcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Prime the snapshot once so the load sub-benchmark hits every time.
	if _, err := cache.LoadOrBuild(engine.Net, engine.SPM, region, params); err != nil {
		b.Fatal(err)
	}
	b.Run("cold-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := netmodel.NewModel(engine.Net, engine.SPM, region, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cache.LoadOrBuild(engine.Net, engine.SPM, region, params); err != nil {
				b.Fatal(err)
			}
		}
		if st := cache.Stats(); st.Builds != 1 {
			b.Fatalf("snapshot-load rebuilt the model: %+v", st)
		}
	})
}

// BenchmarkStateApplyPower measures the incremental power-change fast
// path, the innermost operation of every search.
func BenchmarkStateApplyPower(b *testing.B) {
	engine, plan := benchScenario(b)
	st := engine.Before.Clone()
	neighbor := plan.Neighbors[0]
	delta := 1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply(config.Change{Sector: neighbor, PowerDelta: delta}); err != nil {
			b.Fatal(err)
		}
		delta = -delta
	}
}

// BenchmarkStateApplyTilt measures the tilt-change path (full antenna
// re-evaluation per entry).
func BenchmarkStateApplyTilt(b *testing.B) {
	engine, plan := benchScenario(b)
	st := engine.Before.Clone()
	neighbor := plan.Neighbors[0]
	delta := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Apply(config.Change{Sector: neighbor, TiltDelta: delta}); err != nil {
			b.Fatal(err)
		}
		delta = -delta
	}
}

// BenchmarkUtilityEval measures one overall-utility evaluation with the
// per-grid memo warm.
func BenchmarkUtilityEval(b *testing.B) {
	engine, _ := benchScenario(b)
	st := engine.Before.Clone()
	st.Utility(utility.Performance)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Utility(utility.Performance)
	}
}

// BenchmarkSpeculate compares the two ways to score a candidate move:
// speculative apply/delta-evaluate/revert on the shared state versus the
// clone-and-full-rescore it replaced (the evalengine's reason to exist).
func BenchmarkSpeculate(b *testing.B) {
	_, plan := benchScenario(b)
	moves := make([]config.Change, len(plan.Neighbors))
	for i, n := range plan.Neighbors {
		moves[i] = config.Change{Sector: n, PowerDelta: 1}
	}
	b.Run("speculate", func(b *testing.B) {
		st := plan.Upgrade.Clone()
		st.EnableUtilityTracking(utility.Performance)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := st.Speculate(moves[i%len(moves)], utility.Performance); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clone-full", func(b *testing.B) {
		st := plan.Upgrade.Clone()
		st.Utility(utility.Performance)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work := st.Clone()
			if _, err := work.Apply(moves[i%len(moves)]); err != nil {
				b.Fatal(err)
			}
			_ = work.Utility(utility.Performance)
		}
	})
	// The batched read-only paths score the same per-move candidates
	// without the apply/revert round-trip; "batch-fixed" additionally
	// replaces the per-entry exponentials with centi-dB table lookups.
	for _, mode := range []struct {
		name  string
		fixed bool
	}{{"batch-float", false}, {"batch-fixed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st := plan.Upgrade.Clone()
			st.EnableUtilityTracking(utility.Performance)
			out := make([]netmodel.BatchResult, 0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mv := i % len(moves)
				out = st.SpeculateBatch(moves[mv:mv+1], utility.Performance, mode.fixed, out[:0])
				if out[0].Err != nil {
					b.Fatal(out[0].Err)
				}
			}
		})
	}
}

// BenchmarkUtilityDelta compares the tracked running-sum utility (repair
// only the touched grids inside Apply, O(1) read) against the memoized
// full-grid scan, after one incremental power change. The two do similar
// per-change work — the memo scan also recomputes only dirty grids — so
// the expected result is parity: what the running sum buys is not a
// faster warm read but the revert-safe Speculate path, which avoids the
// state clone that BenchmarkSpeculate shows dominating candidate cost.
func BenchmarkUtilityDelta(b *testing.B) {
	_, plan := benchScenario(b)
	neighbor := plan.Neighbors[0]
	b.Run("delta", func(b *testing.B) {
		st := plan.Upgrade.Clone()
		st.EnableUtilityTracking(utility.Performance)
		delta := 1.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Apply(config.Change{Sector: neighbor, PowerDelta: delta}); err != nil {
				b.Fatal(err)
			}
			_ = st.UtilityTracked(utility.Performance)
			delta = -delta
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		st := plan.Upgrade.Clone()
		st.Utility(utility.Performance)
		delta := 1.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Apply(config.Change{Sector: neighbor, PowerDelta: delta}); err != nil {
				b.Fatal(err)
			}
			_ = st.Utility(utility.Performance)
			delta = -delta
		}
	})
	// The batch paths answer the same "utility after this change"
	// question read-only — no Apply, no tracking repair.
	for _, mode := range []struct {
		name  string
		fixed bool
	}{{"batch-float", false}, {"batch-fixed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st := plan.Upgrade.Clone()
			st.EnableUtilityTracking(utility.Performance)
			moves := []config.Change{{Sector: neighbor, PowerDelta: 1}}
			out := make([]netmodel.BatchResult, 0, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = st.SpeculateBatch(moves, utility.Performance, mode.fixed, out[:0])
				if out[0].Err != nil {
					b.Fatal(out[0].Err)
				}
			}
		})
	}
}

// BenchmarkJointSearch compares the sequential joint search against the
// parallel candidate-scoring variant on the four-corners scenario (the
// largest neighbor set).
func BenchmarkJointSearch(b *testing.B) {
	engine, err := experiments.BuildEngine(benchSeeds[0], experiments.DefaultAreaSpec(topology.Suburban))
	if err != nil {
		b.Fatal(err)
	}
	sweep := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		sweep = append(sweep, n)
	} else {
		// Single-CPU machine: still exercise the parallel path (the
		// speedup needs real cores, the correctness doesn't).
		sweep = append(sweep, 2)
	}
	for _, workers := range sweep {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := engine.MitigatePlan(core.MitigateRequest{
					Scenario: upgrade.FourCorners,
					Method:   core.Joint,
					Workers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(plan.UtilityAfter, "final-utility")
				b.ReportMetric(plan.Search.Stats.WorkerUtilization, "worker-utilization")
			}
		})
	}
}

// BenchmarkTestbedMeasure measures one second of simulated TTI-level
// proportional-fair scheduling on the LTE testbed.
func BenchmarkTestbedMeasure(b *testing.B) {
	sc := testbed.Scenario2()
	tb, err := testbed.New(testbed.Config{Seed: 1}, sc.ENodeBs, sc.UEs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.Measure(1)
	}
}

// BenchmarkExtensionHybrid measures the hybrid model+feedback evaluation
// at the default 4 dB model error.
func BenchmarkExtensionHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hybrid.Run(hybrid.Config{Seed: benchSeeds[0], Class: topology.Suburban,
			RegionSpanM: 6000, CellSizeM: 200})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.HybridSteps), "k-steps")
		b.ReportMetric(float64(res.FeedbackOnlySteps), "K-steps")
	}
}

// BenchmarkExtensionOutagePlan measures precomputing outage responses
// for the tuning-area sectors.
func BenchmarkExtensionOutagePlan(b *testing.B) {
	engine, _ := benchScenario(b)
	for i := 0; i < b.N; i++ {
		p, err := outageplan.New(engine, nil, outageplan.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(p.Covered())), "sectors-covered")
	}
}

// BenchmarkExtensionSignaling measures the signaling-queue replay of a
// migration plan.
func BenchmarkExtensionSignaling(b *testing.B) {
	engine, err := experiments.BuildEngine(benchSeeds[0], experiments.DefaultAreaSpec(topology.Suburban))
	if err != nil {
		b.Fatal(err)
	}
	plan, err := engine.Mitigate(upgrade.FullSite, core.Joint, utility.Performance)
	if err != nil {
		b.Fatal(err)
	}
	gradual, err := plan.GradualMigration(migrate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	oneShot, err := plan.OneShotMigration(migrate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, o, err := signaling.Compare(gradual, oneShot, signaling.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.FailureFraction(), "gradual-failure-frac")
		b.ReportMetric(o.FailureFraction(), "oneshot-failure-frac")
	}
}

// BenchmarkExtensionLoadBalance measures one congestion-relief run.
func BenchmarkExtensionLoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := experiments.RunLoadBalance(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(study.Result.InitialImbalance, "initial-imbalance")
		b.ReportMetric(study.Result.FinalImbalance, "final-imbalance")
	}
}

// BenchmarkAblationTiltApprox compares model construction and baseline
// radio state under exact terrain-aware tilt geometry versus the paper's
// shared flat-earth approximation (DESIGN.md ablation 3).
func BenchmarkAblationTiltApprox(b *testing.B) {
	terr := terrain.MustGenerate(terrain.Config{
		Seed:   benchSeeds[0],
		Bounds: geo.NewRectCentered(geo.Point{}, 8000, 8000),
	})
	net := topology.MustGenerate(topology.GenConfig{
		Seed: benchSeeds[0], Class: topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 6000, 6000),
	})
	spm := propagation.MustNewSPM(2.635e9, terr)
	spm.DiffractionWeight = 0
	for _, mode := range []struct {
		name   string
		approx bool
	}{{"exact", false}, {"shared-delta", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := netmodel.NewModel(net, spm, net.Bounds,
					netmodel.Params{CellSizeM: 200, ApproxTiltElevation: mode.approx})
				if err != nil {
					b.Fatal(err)
				}
				st := m.NewState(config.New(net))
				st.AssignUsersUniform()
				b.ReportMetric(st.Utility(utility.Performance), "baseline-utility")
			}
		})
	}
}

// BenchmarkExtensionMultiCarrier measures the dual-carrier mitigation
// comparison.
func BenchmarkExtensionMultiCarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := experiments.RunMultiCarrier(benchSeeds[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(study.SingleRecovery, "single-carrier-recovery")
		b.ReportMetric(study.DualRecovery, "dual-carrier-recovery")
	}
}

// BenchmarkAblationAnnealVsHeuristic compares Algorithm 1 against the
// simulated-annealing variant on an urban scenario — where the paper
// speculates the heuristic "may get stuck at a local optima".
func BenchmarkAblationAnnealVsHeuristic(b *testing.B) {
	engine, err := experiments.BuildEngine(benchSeeds[0], experiments.DefaultAreaSpec(topology.Urban))
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []core.Method{core.PowerOnly, core.Joint, core.Annealed} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := engine.Mitigate(upgrade.SingleSector, method, utility.Performance)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(plan.RecoveryRatio(), "recovery")
				b.ReportMetric(float64(plan.Search.Evaluations), "evaluations")
			}
		})
	}
}

// BenchmarkWavePlan schedules a whole upgrade season on the suburban
// evaluation market: conflict graph, crew/calendar-constrained anneal,
// and a full mitigation search per wave. The reported metric is the
// season-wide minimum f(C_after), the quantity the schedule optimizes.
func BenchmarkWavePlan(b *testing.B) {
	engine, err := experiments.BuildEngine(benchSeeds[0], experiments.DefaultAreaSpec(topology.Suburban))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := waveplan.Plan(engine, nil, waveplan.Options{
			Constraints: waveplan.Constraints{CrewsPerWave: 3, MaxWaves: 6, OverlapThreshold: 0.4},
			Method:      core.Joint,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MinWaveUtility, "season-min-utility")
		b.ReportMetric(float64(res.ConflictEdges), "conflict-edges")
	}
}
