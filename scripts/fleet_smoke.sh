#!/usr/bin/env bash
# Multi-node fleet smoke test: boot a coordinator and two workers as real
# magusd processes on dynamic ports, submit a multi-market campaign
# through the coordinator, SIGKILL one worker mid-run, and assert the
# fleet finishes every job exactly once and reports the eviction.
#
# Requires: go, curl, jq. Run from the repo root: scripts/fleet_smoke.sh
set -euo pipefail

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

say() { echo "== $*"; }
die() {
  echo "FAIL: $*" >&2
  tail -n 40 "$TMP"/*.log >&2 || true
  exit 1
}

say "building binaries"
go build -o "$TMP/magusd" ./cmd/magusd
go build -o "$TMP/magusctl" ./cmd/magusctl

wait_file() { # path timeout_s
  for _ in $(seq 1 $((10 * $2))); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

start_node() { # name extra-args...
  local name=$1
  shift
  "$TMP/magusd" -mini -listen 127.0.0.1:0 -port-file "$TMP/$name.port" \
    -journal "$TMP/$name.wal" "$@" >"$TMP/$name.log" 2>&1 &
  PIDS+=($!)
  eval "${name}_pid=$!"
  wait_file "$TMP/$name.port" 30 || die "$name never wrote its port file"
  eval "${name}_addr=\$(head -n1 \"$TMP/$name.port\")"
}

say "starting coordinator + 2 workers"
start_node coord -coordinator
COORD="http://$coord_addr"
# One campaign slot per worker keeps mini jobs (~200ms each) queued long
# enough that the SIGKILL below lands mid-run.
start_node w1 -join "$COORD" -campaign-workers 1
start_node w2 -join "$COORD" -campaign-workers 1

say "waiting for both workers to join"
for _ in $(seq 1 100); do
  alive=$(curl -sf "$COORD/fleet/status" | jq '[.members[] | select(.alive)] | length' || echo 0)
  [ "$alive" = 2 ] && break
  sleep 0.2
done
[ "$alive" = 2 ] || die "expected 2 alive members, got $alive"

# Six annealing jobs in each of four markets (the slowest mini method):
# enough runway that a worker dies with work still owned by it.
say "submitting 24-job campaign across 4 markets"
jobs=$(jq -n '[
  ("rural:1","suburban:1","urban:1","suburban:2") as $m |
  ($m | split(":")) as [$class, $seed] |
  range(6) | {class: $class, seed: ($seed | tonumber), scenario: "c", method: "anneal"}
] | {jobs: .}')
submit=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$jobs" "$COORD/campaigns") ||
  die "campaign submit failed"
cid=$(echo "$submit" | jq -r .id)
[ -n "$cid" ] && [ "$cid" != null ] || die "no campaign id in: $submit"
say "campaign $cid accepted"

sleep 0.5
victim_node=$(curl -sf "$COORD/fleet/status" |
  jq -r '[.placements[].node] | group_by(.) | max_by(length) | .[0]')
[ -n "$victim_node" ] && [ "$victim_node" != null ] || die "no placements after submit"
w1_node=$(curl -sf "http://$w1_addr/healthz" | jq -r .node_id)
if [ "$victim_node" = "$w1_node" ]; then victim_pid=$w1_pid; else victim_pid=$w2_pid; fi
done_at_kill=$(curl -sf "$COORD/campaigns/$cid" |
  jq '[.campaign.jobs[] | select(.state == "done")] | length')
say "SIGKILL worker $victim_node (pid $victim_pid; $done_at_kill/24 jobs done)"
kill -9 "$victim_pid"

say "waiting for the fleet to finish the campaign"
deadline=$((SECONDS + 300))
while :; do
  [ $SECONDS -lt $deadline ] || die "campaign did not finish within 300s"
  states=$(curl -sf "$COORD/campaigns/$cid" | jq -r '[.campaign.jobs[].state] | join(" ")') || states=""
  case "$states" in
  *failed*) die "a job failed: $states" ;;
  *cancelled*) die "a job was cancelled: $states" ;;
  esac
  total=$(echo "$states" | wc -w)
  ndone=$(echo "$states" | tr ' ' '\n' | grep -c '^done$' || true)
  [ "$total" = 24 ] && [ "$ndone" = 24 ] && break
  sleep 1
done
say "all 24 jobs done exactly once"

# The eviction lags the kill by the coordinator's heartbeat timeout
# (~6s); poll for it rather than reading the status once.
say "waiting for the missed-heartbeat eviction"
for _ in $(seq 1 150); do
  status=$(curl -sf "$COORD/fleet/status")
  echo "$status" | jq -e --arg n "$victim_node" \
    '(.evictions // []) | map(select(.node == $n and (.reason | contains("missed heartbeats")))) | length >= 1' \
    >/dev/null && evicted=1 && break
  sleep 0.2
done
[ "${evicted:-}" = 1 ] || die "no missed-heartbeat eviction for $victim_node in fleet status"
replaced=$(echo "$status" | jq --arg n "$victim_node" \
  '[(.evictions // [])[] | select(.node == $n)] | map(.replaced_jobs) | add')
say "eviction recorded for $victim_node ($replaced jobs re-placed)"
if [ "${replaced:-0}" = 0 ] && [ "$done_at_kill" = 24 ]; then
  say "warning: victim finished before the kill; failover path not exercised"
fi

bumped=$(curl -sf "$COORD/campaigns/$cid" |
  jq '[.campaign.jobs[] | select(.epoch > 1)] | length')
say "$bumped jobs completed under a re-placed (epoch > 1) lease"

say "operator view (magusctl fleet status):"
"$TMP/magusctl" fleet status -server "$COORD"

say "PASS"
