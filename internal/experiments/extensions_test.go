package experiments

import (
	"strings"
	"testing"
)

func TestRunHybridSweep(t *testing.T) {
	sweep, err := RunHybridSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != len(sweep.ErrorsDB) {
		t.Fatalf("results = %d, want %d", len(sweep.Results), len(sweep.ErrorsDB))
	}
	for i, r := range sweep.Results {
		// Hybrid never worsens the model-based starting point.
		if r.HybridUtility < r.ModelOnlyUtility-1e-9 {
			t.Errorf("error %v: hybrid %v below model-only %v",
				sweep.ErrorsDB[i], r.HybridUtility, r.ModelOnlyUtility)
		}
		// k <= K whenever feedback-only had anything to do.
		if r.FeedbackOnlySteps > 0 && r.HybridSteps > r.FeedbackOnlySteps {
			t.Errorf("error %v: k=%d exceeds K=%d",
				sweep.ErrorsDB[i], r.HybridSteps, r.FeedbackOnlySteps)
		}
	}
	if !strings.Contains(sweep.String(), "hybrid") {
		t.Error("sweep output missing header")
	}
}

func TestRunSignaling(t *testing.T) {
	cmp, err := RunSignaling(1)
	if err != nil {
		t.Fatal(err)
	}
	// The gradual plan must never strain signaling harder than the
	// one-shot burst.
	if cmp.Gradual.MaxDelaySec > cmp.OneShot.MaxDelaySec {
		t.Errorf("gradual max delay %v above one-shot %v",
			cmp.Gradual.MaxDelaySec, cmp.OneShot.MaxDelaySec)
	}
	if cmp.Gradual.FailureFraction() > cmp.OneShot.FailureFraction() {
		t.Errorf("gradual failure fraction %v above one-shot %v",
			cmp.Gradual.FailureFraction(), cmp.OneShot.FailureFraction())
	}
	if !strings.Contains(cmp.String(), "signaling") {
		t.Error("signaling output missing header")
	}
}

func TestRunOutageStudy(t *testing.T) {
	study, err := RunOutageStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if study.Covered == 0 {
		t.Fatal("no sectors covered")
	}
	if len(study.Responses) != study.Covered {
		t.Fatalf("responses = %d, covered = %d", len(study.Responses), study.Covered)
	}
	for _, r := range study.Responses {
		if !r.Precomputed {
			t.Error("covered outage should hit the precomputed table")
		}
		if r.UtilityApplied < r.UtilityOutage-1e-9 {
			t.Error("applying the precomputed config worsened utility")
		}
		if r.UtilityRefined < r.UtilityApplied-1e-9 {
			t.Error("refinement worsened utility")
		}
	}
	if study.MeanExpectedRecovery <= 0 {
		t.Error("mean expected recovery should be positive")
	}
	if !strings.Contains(study.String(), "unplanned outages") {
		t.Error("outage output missing header")
	}
}

func TestRunLoadBalance(t *testing.T) {
	study, err := RunLoadBalance(1)
	if err != nil {
		t.Fatal(err)
	}
	r := study.Result
	if len(r.Steps) > 0 && r.FinalMaxLoad >= r.InitialMaxLoad {
		t.Errorf("balancing accepted steps but max load did not drop: %v -> %v",
			r.InitialMaxLoad, r.FinalMaxLoad)
	}
	if r.UtilityLossFrac() > 0.011 {
		t.Errorf("utility sacrifice %v beyond bound", r.UtilityLossFrac())
	}
	if !strings.Contains(study.String(), "load balancing") {
		t.Error("loadbalance output missing header")
	}
}

func TestRunUEDistribution(t *testing.T) {
	study, err := RunUEDistribution(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range []float64{study.UniformRecovery, study.WeightedRecovery} {
		if rr < -0.05 || rr > 1.05 {
			t.Errorf("recovery %v outside [0, 1]", rr)
		}
	}
	if !strings.Contains(study.String(), "UE distribution") {
		t.Error("distribution output missing header")
	}
}

func TestRunMultiCarrier(t *testing.T) {
	study, err := RunMultiCarrier(1)
	if err != nil {
		t.Fatal(err)
	}
	// A second orthogonal carrier gives displaced users more places to
	// go: the upgrade hurts relatively less.
	if study.DualUpgradeDropFrac > study.SingleUpgradeDropFrac+1e-9 {
		t.Errorf("dual-carrier drop %v above single-carrier %v",
			study.DualUpgradeDropFrac, study.SingleUpgradeDropFrac)
	}
	for _, rr := range []float64{study.SingleRecovery, study.DualRecovery} {
		if rr < -0.05 || rr > 1.1 {
			t.Errorf("recovery %v outside sane range", rr)
		}
	}
	if !strings.Contains(study.String(), "multi-carrier") {
		t.Error("multicarrier output missing header")
	}
}

func TestRunOpsWeek(t *testing.T) {
	week, err := RunOpsWeek(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(week.Events) == 0 {
		t.Fatal("no events handled")
	}
	for _, e := range week.Events {
		if e.Recovery < -0.05 || e.Recovery > 1.05 {
			t.Errorf("event recovery %v outside [0, 1]", e.Recovery)
		}
		if e.BurstMitigated > e.BurstOneShot+1e-9 {
			t.Errorf("gradual burst %v above one-shot %v", e.BurstMitigated, e.BurstOneShot)
		}
		// Mitigation never makes the impact grade worse.
		if e.WorstMitigated > e.WorstUnmitigated {
			t.Errorf("mitigation worsened impact grade: %v -> %v",
				e.WorstUnmitigated, e.WorstMitigated)
		}
	}
	if week.MeanRecovery <= 0 {
		t.Error("mean recovery should be positive")
	}
	if !strings.Contains(week.String(), "maintenance window") {
		t.Error("opsweek output missing header")
	}
}
