package chaos

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"magus/internal/executor"
	"magus/internal/runbook"
	"magus/internal/simwindow"
)

func TestParseFaultRoundTrip(t *testing.T) {
	for _, s := range []string{
		"push-error@2",
		"push-error@2x3",
		"push-delay@1+50",
		"kpi-loss@4",
		"kpi-loss@4x2",
		"kpi-breach@3",
		"kpi-breach@3x5",
		"crash-before-push@1",
		"crash-before-commit@2",
		"crash-after-commit@7",
	} {
		f, err := ParseFault(s)
		if err != nil {
			t.Errorf("ParseFault(%q): %v", s, err)
			continue
		}
		// Counted kinds normalize the implicit x1 away on render; both
		// spellings must reparse to the same fault.
		back, err := ParseFault(f.String())
		if err != nil {
			t.Errorf("reparse %q (from %q): %v", f.String(), s, err)
			continue
		}
		if back != f {
			t.Errorf("round trip %q -> %q -> %+v != %+v", s, f.String(), back, f)
		}
	}
}

func TestParseFaultErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"push-error",
		"meteor@3",
		"push-error@zero",
		"push-error@0",
		"push-error@-1",
		"push-error@2x0",
		"push-error@2xmany",
		"push-delay@2",
		"push-delay@2+0",
		"push-delay@2+ms",
		"crash-before-push@",
	} {
		if _, err := ParseFault(s); err == nil {
			t.Errorf("ParseFault(%q) accepted", s)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := Parse("push-error@1x2, kpi-breach@3,, crash-after-commit@2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(p.Faults))
	}
	if !p.HasCrash() {
		t.Error("HasCrash() = false with a crash fault present")
	}
	if p2, _ := Parse("push-error@1"); p2.HasCrash() {
		t.Error("HasCrash() = true without crash faults")
	}
}

// TestSplit partitions a mixed script: chaos delivery faults to the
// plan, simwindow environmental faults to the timed list, unknown kinds
// rejected by whichever grammar claims them.
func TestSplit(t *testing.T) {
	plan, timed, err := Split("push-error@2x2,sector-down@5:17,kpi-breach@3,surge@2+10:4:x1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Faults) != 2 {
		t.Errorf("chaos faults = %d, want 2", len(plan.Faults))
	}
	if len(timed) != 2 {
		t.Errorf("timed faults = %d, want 2", len(timed))
	}
	for _, f := range timed {
		if f.Kind != simwindow.FaultSectorDown && f.Kind != simwindow.FaultLoadSurge {
			t.Errorf("timed fault of kind %v leaked through", f.Kind)
		}
	}
	if _, _, err := Split("meteor@3"); err == nil {
		t.Error("unknown kind accepted")
	}
	if plan, timed, err := Split(""); err != nil || len(plan.Faults) != 0 || len(timed) != 0 {
		t.Errorf("empty script: plan=%d timed=%d err=%v, want all empty", len(plan.Faults), len(timed), err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	r := Rates{PushError: 0.5, PushDelay: 0.5, KPILoss: 0.5}
	a := Generate(42, 10, r)
	b := Generate(42, 10, r)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal seeds diverged:\n%s\n%s", a, b)
	}
	c := Generate(43, 10, r)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced the identical plan (possible but wildly unlikely)")
	}
	if p := Generate(42, 10, Rates{}); len(p.Faults) != 0 {
		t.Errorf("zero rates generated %d faults", len(p.Faults))
	}
	full := Generate(42, 10, Rates{PushError: 1, PushDelay: 1, KPILoss: 1})
	if len(full.Faults) != 30 {
		t.Errorf("rate-1 plan has %d faults, want 30 (3 kinds x 10 steps)", len(full.Faults))
	}
	if full.HasCrash() {
		t.Error("Generate produced a crash fault; crashes are scripted, never sampled")
	}
	// Generated plans round-trip through the grammar.
	back, err := Parse(full.String())
	if err != nil {
		t.Fatalf("reparse generated plan: %v", err)
	}
	if !reflect.DeepEqual(full, back) {
		t.Error("generated plan did not round-trip through Parse")
	}
}

// fakeNet is a minimal executor.Network recording what reaches it.
type fakeNet struct {
	pushes  []string
	applied map[string]bool
	tick    int
}

func newFakeNet() *fakeNet { return &fakeNet{applied: map[string]bool{}} }

func (f *fakeNet) key(step runbook.Step) string {
	return fmt.Sprintf("%s/%d", step.Kind, step.Index)
}
func (f *fakeNet) Preflight(step runbook.Step) error { return nil }
func (f *fakeNet) Push(ctx context.Context, step runbook.Step) error {
	f.pushes = append(f.pushes, f.key(step))
	f.applied[f.key(step)] = true
	return nil
}
func (f *fakeNet) Applied(step runbook.Step) (bool, error) { return f.applied[f.key(step)], nil }
func (f *fakeNet) Observe(step int) (executor.Sample, error) {
	f.tick++
	return executor.Sample{Tick: f.tick, Utility: 100, Floor: 90}, nil
}

func step(index int, kind runbook.StepKind) runbook.Step {
	return runbook.Step{Index: index, Kind: kind}
}

func TestNetworkInjectsPushFaults(t *testing.T) {
	plan, err := Parse("push-error@1x2,push-delay@2+10")
	if err != nil {
		t.Fatal(err)
	}
	inner := newFakeNet()
	n := plan.Instrument(inner)
	ctx := context.Background()

	// Step 1 fails twice before the third attempt reaches the network.
	for i := 0; i < 2; i++ {
		if err := n.Push(ctx, step(1, runbook.KindMigration)); err == nil {
			t.Fatalf("push %d: injected error did not fire", i+1)
		}
	}
	if err := n.Push(ctx, step(1, runbook.KindMigration)); err != nil {
		t.Fatalf("push 3: %v", err)
	}
	if len(inner.pushes) != 1 {
		t.Errorf("inner saw %d pushes, want 1 (faults consumed the rest)", len(inner.pushes))
	}

	// Step 2 is delayed once, then clean.
	start := time.Now()
	if err := n.Push(ctx, step(2, runbook.KindMigration)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delayed push took %v, want >= 10ms", d)
	}
	start = time.Now()
	if err := n.Push(ctx, step(2, runbook.KindOffAir)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 10*time.Millisecond {
		t.Errorf("second push still delayed (%v); delay must be consumed", d)
	}
	if n.Injected() != 3 {
		t.Errorf("injected = %d, want 3 (2 errors + 1 delay)", n.Injected())
	}
}

func TestNetworkSparesRollbackPushes(t *testing.T) {
	plan, err := Parse("push-error@1x100")
	if err != nil {
		t.Fatal(err)
	}
	inner := newFakeNet()
	n := plan.Instrument(inner)
	if err := n.Push(context.Background(), step(1, runbook.KindRollback)); err != nil {
		t.Fatalf("rollback push was instrumented: %v", err)
	}
	if len(inner.pushes) != 1 {
		t.Errorf("inner saw %d pushes, want 1", len(inner.pushes))
	}
}

func TestNetworkInjectsKPIFaults(t *testing.T) {
	plan, err := Parse("kpi-loss@1x2,kpi-breach@2x1,kpi-breach@3")
	if err != nil {
		t.Fatal(err)
	}
	inner := newFakeNet()
	n := plan.Instrument(inner)

	for i := 0; i < 2; i++ {
		if _, err := n.Observe(1); err == nil {
			t.Fatalf("observe %d: loss did not fire", i+1)
		}
	}
	if _, err := n.Observe(1); err != nil {
		t.Fatalf("loss not consumed: %v", err)
	}
	// The clock advances even when the report is lost.
	if inner.tick != 3 {
		t.Errorf("inner tick = %d, want 3", inner.tick)
	}

	// Bounded breach: one depressed sample, then clean.
	if s, _ := n.Observe(2); s.Utility >= s.Floor {
		t.Error("bounded breach did not depress the sample")
	}
	if s, _ := n.Observe(2); s.Utility < s.Floor {
		t.Error("bounded breach not consumed")
	}

	// Sustained breach from step 3 on: never consumed, and it also
	// covers later steps.
	for _, stepIdx := range []int{3, 3, 4, 7} {
		if s, _ := n.Observe(stepIdx); s.Utility >= s.Floor {
			t.Errorf("sustained breach missing at step %d", stepIdx)
		}
	}
	// Steps before the sustained start stay clean.
	if s, _ := n.Observe(1); s.Utility < s.Floor {
		t.Error("sustained breach leaked to an earlier step")
	}
}

func TestHookFiresOnce(t *testing.T) {
	plan, err := Parse("crash-before-commit@2")
	if err != nil {
		t.Fatal(err)
	}
	n := plan.Instrument(newFakeNet())
	hook := n.Hook()
	if err := hook(executor.CrashBeforePush, 2); err != nil {
		t.Errorf("wrong point fired: %v", err)
	}
	if err := hook(executor.CrashBeforeCommit, 1); err != nil {
		t.Errorf("wrong step fired: %v", err)
	}
	if err := hook(executor.CrashBeforeCommit, 2); !errors.Is(err, executor.ErrKilled) {
		t.Errorf("scripted site: err = %v, want ErrKilled", err)
	}
	if err := hook(executor.CrashBeforeCommit, 2); err != nil {
		t.Errorf("site fired twice: %v", err)
	}
}

func TestFaultStringGrammarAgreement(t *testing.T) {
	// Every kind's String output must parse under its own grammar line —
	// guards against the doc comment and the parser drifting apart.
	faults := []Fault{
		{Kind: KindPushError, Step: 1, Count: 2},
		{Kind: KindPushDelay, Step: 2, Delay: 30 * time.Millisecond},
		{Kind: KindKPILoss, Step: 3, Count: 1},
		{Kind: KindKPIBreach, Step: 4},
		{Kind: KindCrashAfterCommit, Step: 5},
	}
	p := Plan{Faults: faults}
	if strings.Count(p.String(), ",") != len(faults)-1 {
		t.Errorf("plan string %q malformed", p.String())
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("plan round trip: %q -> %+v", p.String(), back)
	}
}
