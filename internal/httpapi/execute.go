package httpapi

import (
	"net/http"
	"time"

	"magus/internal/campaign"
	"magus/internal/chaos"
	"magus/internal/core"
	"magus/internal/executor"
	"magus/internal/migrate"
	"magus/internal/runbook"
	"magus/internal/schedule"
	"magus/internal/simwindow"
)

// executeRequest is the POST /execute body: the /plan vocabulary for
// what to execute, plus the campaign ExecSpec tuning the guarded run —
// the same nested shape an execute campaign job uses, so the two
// surfaces cannot drift apart.
type executeRequest struct {
	Scenario string `json:"scenario"`
	Method   string `json:"method"`
	Utility  string `json:"utility"`
	// Workers is the in-search scoring parallelism for the planning
	// phase (0 = sequential).
	Workers int `json:"workers"`
	// FixedPoint scores candidates on the batched quantized path.
	FixedPoint bool `json:"fixed_point"`
	// Exec tunes the run (nil = executor defaults, no faults).
	Exec *campaign.ExecSpec `json:"exec"`
}

// handleExecuteSubmit plans the mitigation synchronously against the
// server's own engine (seconds), then hands the runbook to the guarded
// executor asynchronously: 202 with the run ID, progress via
// GET /execute/{id}. The run outlives the request — disconnecting the
// client does not abandon a half-pushed runbook.
func (s *Server) handleExecuteSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	var req executeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	scenario, ok := scenarioByName[req.Scenario]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown scenario %q", req.Scenario)
		return
	}
	method, ok := methodByName[req.Method]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown method %q", req.Method)
		return
	}
	util, ok := campaign.UtilityByName[req.Utility]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown utility %q", req.Utility)
		return
	}
	if req.Workers < 0 {
		httpError(w, http.StatusBadRequest, "negative workers")
		return
	}
	spec := req.Exec
	if spec == nil {
		spec = &campaign.ExecSpec{}
	}
	plan, timed, err := chaos.Split(spec.Chaos)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.LoadNoise < 0 || spec.StepDeadlineMS < 0 || spec.Retries < 0 ||
		spec.RetryBackoffMS < 0 || spec.VerifySamples < 0 || spec.GraceSamples < 0 {
		httpError(w, http.StatusBadRequest, "negative exec parameter")
		return
	}

	mp, err := s.engine.MitigatePlan(core.MitigateRequest{
		Ctx:        r.Context(),
		Scenario:   scenario,
		Method:     method,
		Util:       util,
		Workers:    req.Workers,
		FixedPoint: req.FixedPoint,
	})
	if err != nil {
		httpError(w, planStatus(err), "%v", err)
		return
	}
	mig, err := mp.GradualMigration(migrate.Options{})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "migrate: %v", err)
		return
	}
	rb, err := runbook.Build(mp, mig)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "runbook: %v", err)
		return
	}

	cfg := simwindow.Config{
		Seed:      spec.Seed,
		StartHour: spec.StartHour,
		LoadNoise: spec.LoadNoise,
		Faults:    timed,
	}
	if spec.Diurnal {
		profile := schedule.DefaultProfile()
		cfg.Profile = &profile
	}
	net, err := executor.NewSimNetwork(s.engine.Before, rb, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "execute: %v", err)
		return
	}
	cnet := plan.Instrument(net)
	run, err := s.exec.Start(cnet, rb, executor.Options{
		StepDeadline:  time.Duration(spec.StepDeadlineMS) * time.Millisecond,
		Retries:       spec.Retries,
		RetryBackoff:  time.Duration(spec.RetryBackoffMS) * time.Millisecond,
		VerifySamples: spec.VerifySamples,
		GraceSamples:  spec.GraceSamples,
		Seed:          spec.ExecSeed,
		CrashHook:     cnet.Hook(),
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	w.Header().Set("Location", "/execute/"+run.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":    run.ID,
		"steps": len(rb.Steps),
	})
}

// handleExecuteStatus reports a run's live per-step progress.
func (s *Server) handleExecuteStatus(w http.ResponseWriter, r *http.Request) {
	run, ok := s.exec.Lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	resp := map[string]any{
		"id":       run.ID,
		"finished": run.Finished(),
		"status":   run.Status(),
	}
	if run.Finished() {
		if err := run.Err(); err != nil {
			resp["error"] = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
