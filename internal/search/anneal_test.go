package search

import (
	"testing"

	"magus/internal/utility"
)

func TestAnnealNeverWorsens(t *testing.T) {
	sc := makeScenario(t, 3)
	u0 := sc.upgrade.Utility(utility.Performance)
	work := sc.upgrade.Clone()
	res, err := Anneal(work, sc.neighbors, AnnealOptions{Seed: 1, Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalUtility < u0-1e-9 {
		t.Fatalf("annealing worsened utility: %v -> %v", u0, res.FinalUtility)
	}
	// The working state ends at the best visited configuration.
	if got := work.Utility(utility.Performance); got != res.FinalUtility {
		t.Errorf("state utility %v != reported %v", got, res.FinalUtility)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	sc := makeScenario(t, 5)
	run := func(seed int64) float64 {
		work := sc.upgrade.Clone()
		res, err := Anneal(work, sc.neighbors, AnnealOptions{Seed: seed, Iterations: 300})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalUtility
	}
	if run(7) != run(7) {
		t.Error("same seed should reproduce the same result")
	}
}

func TestAnnealRespectsCap(t *testing.T) {
	sc := makeScenario(t, 3)
	cap := sc.base.Utility(utility.Performance)
	work := sc.upgrade.Clone()
	res, err := Anneal(work, sc.neighbors, AnnealOptions{
		Seed:       1,
		Iterations: 800,
		Options:    Options{CapUtility: cap},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One accepted move may overshoot the cap, but not by much more
	// than a single step's gain.
	if res.FinalUtility > cap*1.01 {
		t.Errorf("annealing ran past the recovery cap: %v vs %v", res.FinalUtility, cap)
	}
}

func TestAnnealEmptyNeighbors(t *testing.T) {
	sc := makeScenario(t, 3)
	work := sc.upgrade.Clone()
	res, err := Anneal(work, nil, AnnealOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 || res.Evaluations != 0 {
		t.Error("no neighbors should mean no work")
	}
}

func TestAnnealCompetitiveWithHeuristic(t *testing.T) {
	// The annealer explores more broadly; with a reasonable budget it
	// should land in the same league as Algorithm 1 (the paper
	// speculates it could do better in urban areas).
	sc := makeScenario(t, 11)
	heuristic := sc.upgrade.Clone()
	hRes, err := Power(heuristic, sc.base, sc.neighbors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	annealed := sc.upgrade.Clone()
	aRes, err := Anneal(annealed, sc.neighbors, AnnealOptions{Seed: 1, Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if aRes.FinalUtility < hRes.FinalUtility*0.99 {
		t.Errorf("annealing %v far below heuristic %v", aRes.FinalUtility, hRes.FinalUtility)
	}
	t.Logf("heuristic=%v (%d evals), anneal=%v (%d evals)",
		hRes.FinalUtility, hRes.Evaluations, aRes.FinalUtility, aRes.Evaluations)
}
