// Process-wide model snapshot cache: the on-disk companion to the
// in-memory engine cache. The engine cache saves rebuilding within one
// process; the snapshot cache saves the contributor-array construction
// across processes and restarts (magusd restarting with a warm cache
// directory rebuilds no models for markets it has seen before).
package experiments

import (
	"sync/atomic"

	"magus/internal/modelcache"
)

// modelCache is the process-wide default snapshot cache, applied to
// engines built by BuildEngine after it is set. Nil (the default)
// builds models directly.
var modelCache atomic.Pointer[modelcache.Cache]

// SetModelCacheDir opens (creating if needed) an on-disk model snapshot
// cache rooted at dir and installs it as the process-wide default used
// by BuildEngine; the magusd/magusctl/magus-bench -model-cache flags
// call this at startup. The cache is also attached to the shared engine
// cache so both layers report through one Stats call. An empty dir
// detaches (engines build models directly again).
func SetModelCacheDir(dir string) error {
	if dir == "" {
		modelCache.Store(nil)
		engineCache.AttachSnapshots(nil)
		return nil
	}
	mc, err := modelcache.Open(dir)
	if err != nil {
		return err
	}
	modelCache.Store(mc)
	engineCache.AttachSnapshots(mc)
	return nil
}

// ModelCache returns the process-wide snapshot cache (nil when unset).
// The returned *modelcache.Cache is nil-safe: passing it on via
// core.SetupConfig.ModelCache needs no nil check.
func ModelCache() *modelcache.Cache { return modelCache.Load() }
