package sanitize

import (
	"math"
	"testing"
)

// FuzzRun drives the sanitizer with adversarial datasets decoded from
// raw bytes and checks its invariants: no panic, and under Repair every
// non-quarantined sector comes out with fully valid matrices and
// in-range configuration, whatever went in.
func FuzzRun(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{3, 4, 0x7f, 0xc0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Add([]byte{1, 2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 9, 9}, uint8(0))
	f.Add([]byte{2, 3, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))

	f.Fuzz(func(t *testing.T, raw []byte, policyByte uint8) {
		ds := decodeDataset(raw)
		policy := Policy(policyByte % 3)

		rep, err := Run(ds, policy)
		if rep == nil {
			t.Fatal("nil report")
		}
		if policy == Strict {
			if (err != nil) == rep.Clean {
				t.Fatalf("Strict: clean=%v but err=%v", rep.Clean, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("%v policy returned error: %v", policy, err)
		}

		// Post-conditions of a mutating run: anything not quarantined is
		// safe to install.
		for _, sec := range ds.Sectors {
			if sec.Quarantined {
				continue
			}
			if policy == Quarantine {
				continue // untouched by design; defective ones are quarantined
			}
			if len(sec.TiltSettings) == 0 && len(sec.LinkDB) == 0 {
				continue
			}
			if len(sec.LinkDB) != len(sec.TiltSettings) {
				t.Fatalf("sector %d: %d rows for %d settings survived Repair", sec.ID, len(sec.LinkDB), len(sec.TiltSettings))
			}
			for ti, row := range sec.LinkDB {
				if row == nil {
					t.Fatalf("sector %d: missing matrix %d survived Repair", sec.ID, ti)
				}
				for c, v := range row {
					if !validCell(v) {
						t.Fatalf("sector %d tilt %d cell %d: invalid %g survived Repair", sec.ID, ti, c, v)
					}
				}
			}
			if sec.PowerDbm < sec.MinPowerDbm || sec.PowerDbm > sec.MaxPowerDbm || math.IsNaN(sec.PowerDbm) {
				t.Fatalf("sector %d: power %g outside [%g, %g] survived Repair", sec.ID, sec.PowerDbm, sec.MinPowerDbm, sec.MaxPowerDbm)
			}
		}
		for i, v := range ds.UE {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("density %d: invalid %g survived sanitation", i, v)
			}
		}
		if rep.Found > 0 && rep.Clean {
			t.Fatalf("clean=true with %d defects", rep.Found)
		}
	})
}

// decodeDataset deterministically builds a small Dataset from raw
// bytes, deliberately allowing structural nonsense (mismatched rows,
// weird bounds, NaN payloads) so the sanitizer sees realistic garbage.
func decodeDataset(raw []byte) *Dataset {
	r := &byteReader{raw: raw}
	nSectors := int(r.byte() % 5)
	nTilts := int(r.byte() % 5)
	nCells := int(r.byte()%5) + 1
	ds := &Dataset{}
	for s := 0; s < nSectors; s++ {
		sec := SectorData{
			ID:          s,
			PowerDbm:    r.value(),
			MinPowerDbm: r.value(),
			MaxPowerDbm: r.value(),
			TiltDeg:     r.value(),
		}
		for t := 0; t < nTilts; t++ {
			sec.TiltSettings = append(sec.TiltSettings, r.value())
		}
		for c := 0; c < nCells; c++ {
			sec.Cells = append(sec.Cells, c)
		}
		rows := int(r.byte() % 6) // may disagree with nTilts on purpose
		for t := 0; t < rows; t++ {
			if r.byte()%4 == 0 {
				sec.LinkDB = append(sec.LinkDB, nil)
				continue
			}
			row := make([]float64, nCells)
			for c := range row {
				row[c] = r.value()
			}
			sec.LinkDB = append(sec.LinkDB, row)
		}
		refs := int(r.byte() % 4)
		for n := 0; n < refs; n++ {
			sec.Neighbors = append(sec.Neighbors, int(r.byte()%8))
		}
		ds.Sectors = append(ds.Sectors, sec)
	}
	cells := int(r.byte() % 8)
	for c := 0; c < cells; c++ {
		ds.UE = append(ds.UE, r.value())
	}
	return ds
}

type byteReader struct {
	raw []byte
	pos int
}

func (r *byteReader) byte() byte {
	if r.pos >= len(r.raw) {
		return 0
	}
	b := r.raw[r.pos]
	r.pos++
	return b
}

// value maps two bytes onto a spread of interesting floats: plausible
// link budgets, out-of-range magnitudes, NaN and infinities.
func (r *byteReader) value() float64 {
	b := r.byte()
	switch b % 16 {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return 1e9
	case 4:
		return -1e9
	default:
		return -float64(r.byte()) - float64(b)/256
	}
}
