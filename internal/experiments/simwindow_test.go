package experiments

import (
	"strings"
	"testing"
)

func TestRunSimWindow(t *testing.T) {
	res, err := RunSimWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 6 {
		t.Fatalf("runs = %d, want 3 strategies x 2 conditions", len(res.Runs))
	}
	grad := res.Run(StrategyGradual, false)
	one := res.Run(StrategyOneShot, false)
	react := res.Run(StrategyReactive, false)
	if grad == nil || one == nil || react == nil {
		t.Fatal("missing clean runs")
	}

	// The paper's gradual-migration claim as a time-series measurement:
	// the worst per-tick handover wave under the Magus runbook stays
	// strictly below the one-shot reconfiguration's synchronized wave.
	if grad.Summary.MaxTickHandovers >= one.Summary.MaxTickHandovers {
		t.Errorf("gradual max handovers/tick %.0f not below one-shot %.0f",
			grad.Summary.MaxTickHandovers, one.Summary.MaxTickHandovers)
	}
	if one.Summary.PushesApplied != 1 {
		t.Errorf("one-shot applied %d pushes, want 1", one.Summary.PushesApplied)
	}
	if !grad.Summary.EndsAboveFloor {
		t.Error("clean gradual window ends below the f(C_after) floor")
	}
	// The reactive strategy drops the targets before tuning, so its
	// window spends ticks below its own final-configuration floor while
	// the feedback climb is still running; Magus pre-compensates.
	if react.Summary.TicksBelowFloor <= grad.Summary.TicksBelowFloor {
		t.Errorf("reactive below-floor ticks %d not above gradual %d",
			react.Summary.TicksBelowFloor, grad.Summary.TicksBelowFloor)
	}

	// Faulted condition: the script actually fires, and the gradual
	// strategy's replanner hook is the only one armed.
	for _, strategy := range []string{StrategyGradual, StrategyOneShot, StrategyReactive} {
		r := res.Run(strategy, true)
		if r == nil {
			t.Fatalf("missing faulted %s run", strategy)
		}
		if r.Summary.FaultsInjected == 0 {
			t.Errorf("faulted %s run injected no faults", strategy)
		}
		if strategy != StrategyGradual && r.Summary.Replans != 0 {
			t.Errorf("%s run replanned %d times without a replanner", strategy, r.Summary.Replans)
		}
	}

	out := res.String()
	for _, want := range []string{StrategyGradual, StrategyOneShot, StrategyReactive, "faulted"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q\n%s", want, out)
		}
	}
}

// TestRunSimWindowScale smoke-tests the grid-density sweep at a coarse
// (cheap) density: both measurement modes run the same window, the
// timings are populated, and the Timed records export per mode.
func TestRunSimWindowScale(t *testing.T) {
	res, err := RunSimWindowScale(1, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(res.Runs))
	}
	r := res.Runs[0]
	if r.Grids <= 0 || r.IncNsPerTick <= 0 || r.FullNsPerTick <= 0 {
		t.Fatalf("sweep run not populated: %+v", r)
	}
	if got := len(res.Timings()); got != 2 {
		t.Fatalf("Timings() exported %d records, want 2", got)
	}
	if out := res.String(); !strings.Contains(out, "x0.5") {
		t.Errorf("sweep output missing the density row:\n%s", out)
	}
}
