package impact

import (
	"math"
	"strings"
	"testing"

	"magus/internal/config"
	"magus/internal/core"
	"magus/internal/netmodel"
	"magus/internal/topology"
)

func fixture(t *testing.T) (*core.Engine, *netmodel.State) {
	t.Helper()
	engine, err := core.NewEngine(core.SetupConfig{
		Seed:          3,
		Class:         topology.Suburban,
		RegionSpanM:   6000,
		CellSizeM:     200,
		EqualizeSteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine, engine.Before
}

func TestSnapshotConsistency(t *testing.T) {
	_, before := fixture(t)
	snap := Take(before)
	if snap.TotalUE <= 0 || snap.ServedUE <= 0 {
		t.Fatal("empty snapshot")
	}
	if snap.ServedUE > snap.TotalUE+1e-9 {
		t.Error("served exceeds total")
	}
	loadSum := 0.0
	for _, kpi := range snap.Sectors {
		if kpi.LoadUE < 0 || kpi.ServedGrids < 0 {
			t.Fatalf("negative KPI: %+v", kpi)
		}
		if kpi.LoadUE > 0 && kpi.MeanRateBps <= 0 {
			t.Fatalf("sector %d loaded but rate zero", kpi.Sector)
		}
		loadSum += kpi.LoadUE
	}
	if loadSum < snap.ServedUE-1e-6 {
		t.Errorf("per-sector loads %v below served UE %v", loadSum, snap.ServedUE)
	}
}

func TestAssessNoChange(t *testing.T) {
	_, before := fixture(t)
	snap := Take(before)
	rep, err := Assess(snap, snap, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("identical snapshots produced %d findings: %v", len(rep.Findings), rep.Findings)
	}
	if rep.UtilityDelta != 0 || rep.ServedUEDelta != 0 {
		t.Error("deltas should be zero")
	}
	if rep.Worst() != Info {
		t.Error("empty report should be info-grade")
	}
}

func TestAssessUpgradeImpact(t *testing.T) {
	engine, before := fixture(t)
	pre := Take(before)

	during := before.Clone()
	central := engine.Net.CentralSite()
	target := engine.Net.Sites[central].Sectors[0]
	during.MustApply(config.Change{Sector: target, TurnOff: true})
	post := Take(during)

	rep, err := Assess(pre, post, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UtilityDelta >= 0 {
		t.Errorf("utility delta %v should be negative after an outage", rep.UtilityDelta)
	}
	// The off-air sector must be flagged.
	foundOffAir := false
	for _, f := range rep.Findings {
		if f.Kind == "off-air" && f.Sector == target {
			foundOffAir = true
		}
	}
	if !foundOffAir {
		t.Error("off-air sector not flagged")
	}
	// Neighbors absorbing the displaced users should show load surges or
	// rate drops.
	if len(rep.Findings) < 2 {
		t.Errorf("expected collateral findings, got %v", rep.Findings)
	}
	if !strings.Contains(rep.String(), "impact:") {
		t.Error("report string missing header")
	}
}

func TestAssessMismatchedSnapshots(t *testing.T) {
	_, before := fixture(t)
	snap := Take(before)
	other := &Snapshot{Sectors: snap.Sectors[:1]}
	if _, err := Assess(snap, other, Thresholds{}); err == nil {
		t.Error("mismatched snapshots should fail")
	}
}

func TestSeverityOrdering(t *testing.T) {
	if !(Info < Warning && Warning < Critical) {
		t.Error("severity ordering broken")
	}
	if Critical.String() != "critical" || Warning.String() != "warning" || Info.String() != "info" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity should produce a name")
	}
	rep := &Report{Findings: []Finding{{Severity: Warning}, {Severity: Critical}, {Severity: Info}}}
	if rep.Worst() != Critical {
		t.Error("Worst should pick the maximum severity")
	}
}

func TestThresholdDetection(t *testing.T) {
	mk := func(load, rate float64) *Snapshot {
		return &Snapshot{Sectors: []SectorKPI{{Sector: 0, LoadUE: load, MeanRateBps: rate, ServedGrids: 5}}}
	}
	// A 60% rate drop is critical.
	rep, err := Assess(mk(10, 10e6), mk(10, 4e6), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Worst() != Critical {
		t.Errorf("60%% drop graded %v, want critical", rep.Worst())
	}
	// A 30% drop is a warning.
	rep, err = Assess(mk(10, 10e6), mk(10, 7e6), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Worst() != Warning {
		t.Errorf("30%% drop graded %v, want warning", rep.Worst())
	}
	// A doubled load surges.
	rep, err = Assess(mk(10, 10e6), mk(20, 10e6), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	surge := false
	for _, f := range rep.Findings {
		if f.Kind == "load-surge" {
			surge = true
		}
	}
	if !surge {
		t.Error("load surge not detected")
	}
	// Coverage loss across the market.
	before := &Snapshot{Sectors: []SectorKPI{{}}, ServedUE: 100}
	after := &Snapshot{Sectors: []SectorKPI{{}}, ServedUE: 90}
	rep, err = Assess(before, after, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Worst() != Critical {
		t.Error("10-UE coverage loss should be critical")
	}
	if math.Abs(rep.ServedUEDelta+10) > 1e-9 {
		t.Errorf("served delta = %v, want -10", rep.ServedUEDelta)
	}
}
