//go:build !magus_nofixed

package netmodel

// fixedPointEnabled gates the quantized SpeculateBatch variant. The
// magus_nofixed build tag turns it off, forcing every batch through the
// float path — the golden tests build both ways to separate quantization
// error from batch-evaluation error.
const fixedPointEnabled = true
