//go:build !unix

package modelcache

import "errors"

// Platforms without a usable mmap read snapshots with one os.ReadFile
// allocation instead (still zero-copy from there: the arrays alias the
// read buffer).
const mmapSupported = false

func mapFile(path string) ([]byte, func(), error) {
	return nil, nil, errors.New("modelcache: mmap unsupported")
}
