package netmodel

import (
	"math"
	"testing"

	"magus/internal/geo"
	"magus/internal/propagation"
	"magus/internal/terrain"
	"magus/internal/topology"
)

// buildInputs returns inputs whose model exercises both the cutoff
// pruning (small radius relative to the region) and terrain-dependent
// elevation, so a parallel-build bug in either path shows up.
func buildInputs(t testing.TB) (*topology.Network, *propagation.SPM, geo.Rect, Params) {
	t.Helper()
	bounds := geo.NewRectCentered(geo.Point{}, 8000, 8000)
	net := topology.MustGenerate(topology.GenConfig{
		Seed:   7,
		Class:  topology.Suburban,
		Bounds: bounds,
	})
	terr := terrain.MustGenerate(terrain.Config{Seed: 7, Bounds: bounds, Resolution: 400})
	spm := propagation.MustNewSPM(2.635e9, terr)
	return net, spm, net.Bounds, Params{CellSizeM: 250, CutoffRadiusM: 2500}
}

// TestParallelBuildGolden asserts the tentpole invariant: every worker
// count produces contributor arrays bit-identical to the sequential
// build — same entries, same order, same float bits.
func TestParallelBuildGolden(t *testing.T) {
	net, spm, region, params := buildInputs(t)
	params.BuildWorkers = 1
	seq := MustNewModel(net, spm, region, params)
	if seq.NumContributors() == 0 {
		t.Fatal("sequential build produced no contributors")
	}

	for _, workers := range []int{2, 3, 5, 8, 64} {
		params.BuildWorkers = workers
		par := MustNewModel(net, spm, region, params)

		if len(par.core.contribSector) != len(seq.core.contribSector) {
			t.Fatalf("workers=%d: %d entries, want %d", workers,
				len(par.core.contribSector), len(seq.core.contribSector))
		}
		for i := range seq.core.contribSector {
			if par.core.contribSector[i] != seq.core.contribSector[i] {
				t.Fatalf("workers=%d: sector[%d] = %d, want %d", workers, i,
					par.core.contribSector[i], seq.core.contribSector[i])
			}
			if math.Float32bits(par.core.contribBaseDB[i]) != math.Float32bits(seq.core.contribBaseDB[i]) {
				t.Fatalf("workers=%d: baseDB[%d] bits differ: %v vs %v", workers, i,
					par.core.contribBaseDB[i], seq.core.contribBaseDB[i])
			}
			if math.Float32bits(par.core.contribElev[i]) != math.Float32bits(seq.core.contribElev[i]) {
				t.Fatalf("workers=%d: elev[%d] bits differ: %v vs %v", workers, i,
					par.core.contribElev[i], seq.core.contribElev[i])
			}
		}
		for g := range seq.core.gridStart {
			if par.core.gridStart[g] != seq.core.gridStart[g] {
				t.Fatalf("workers=%d: gridStart[%d] = %d, want %d", workers, g,
					par.core.gridStart[g], seq.core.gridStart[g])
			}
		}
		if len(par.core.sectorEntries) != len(seq.core.sectorEntries) {
			t.Fatalf("workers=%d: sectorEntries length differs", workers)
		}
		for b := range seq.core.sectorEntries {
			if len(par.core.sectorEntries[b]) != len(seq.core.sectorEntries[b]) {
				t.Fatalf("workers=%d: sector %d has %d entries, want %d", workers, b,
					len(par.core.sectorEntries[b]), len(seq.core.sectorEntries[b]))
			}
			for j, ref := range seq.core.sectorEntries[b] {
				if par.core.sectorEntries[b][j] != ref {
					t.Fatalf("workers=%d: sectorEntries[%d][%d] = %+v, want %+v",
						workers, b, j, par.core.sectorEntries[b][j], ref)
				}
			}
		}
	}
}

// TestParallelBuildApproxTilt repeats the golden check under the
// paper's flat-earth tilt approximation, the other elevation code path.
func TestParallelBuildApproxTilt(t *testing.T) {
	net, spm, region, params := buildInputs(t)
	params.ApproxTiltElevation = true
	params.BuildWorkers = 1
	seq := MustNewModel(net, spm, region, params)
	params.BuildWorkers = 4
	par := MustNewModel(net, spm, region, params)
	if len(par.core.contribSector) != len(seq.core.contribSector) {
		t.Fatalf("%d entries, want %d", len(par.core.contribSector), len(seq.core.contribSector))
	}
	for i := range seq.core.contribElev {
		if math.Float32bits(par.core.contribElev[i]) != math.Float32bits(seq.core.contribElev[i]) {
			t.Fatalf("elev[%d] bits differ: %v vs %v", i, par.core.contribElev[i], seq.core.contribElev[i])
		}
	}
}

// TestSectorIndexCandidates cross-checks the spatial bucket index
// against a brute-force scan: for every cell center, the candidate list
// must include every sector within the cutoff radius, in ascending
// sector order.
func TestSectorIndexCandidates(t *testing.T) {
	net, spm, region, params := buildInputs(t)
	params.applyDefaults()
	grid, err := geo.NewGrid(region, params.CellSizeM)
	if err != nil {
		t.Fatal(err)
	}
	_ = spm
	idx := newSectorIndex(net, grid, params.CutoffRadiusM)

	for g := 0; g < grid.NumCells(); g++ {
		center := grid.CellCenterIdx(g)
		cand := idx.candidates(center)
		inCand := make(map[int32]bool, len(cand))
		prev := int32(-1)
		for _, b := range cand {
			if b <= prev {
				t.Fatalf("cell %d: candidates not strictly ascending at %d", g, b)
			}
			prev = b
			inCand[b] = true
		}
		for b := range net.Sectors {
			within := net.Sectors[b].Pos.DistanceTo(center) <= params.CutoffRadiusM
			if within && !inCand[int32(b)] {
				t.Fatalf("cell %d: sector %d within cutoff but not a candidate", g, b)
			}
		}
	}
}

// TestBuildWorkersOutOfRange checks degenerate worker counts behave:
// negative and huge values clamp rather than crash.
func TestBuildWorkersOutOfRange(t *testing.T) {
	net, spm, region, params := buildInputs(t)
	for _, w := range []int{-5, 0, 1000000} {
		params.BuildWorkers = w
		m := MustNewModel(net, spm, region, params)
		if m.NumContributors() == 0 {
			t.Fatalf("workers=%d produced empty model", w)
		}
	}
}
