// The fleet subcommand: operate a magusd fleet through its
// coordinator. `status` renders the fleet-wide aggregation (members,
// load, engine-cache counters, placements, evictions); `drain` asks the
// coordinator to stop placing work on a node; `evict` force-removes a
// node and re-places its in-flight jobs immediately.
//
//	magusctl fleet status [-server http://coord:8080]
//	magusctl fleet drain  -node n-1a2b3c4d [-server ...]
//	magusctl fleet evict  -node n-1a2b3c4d [-server ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// fleetStatusView mirrors fleet.Status (the parts the CLI renders).
type fleetStatusView struct {
	Coordinator string  `json:"coordinator"`
	UptimeS     float64 `json:"uptime_s"`
	Members     []struct {
		NodeID     string   `json:"node_id"`
		URL        string   `json:"url"`
		Alive      bool     `json:"alive"`
		Draining   bool     `json:"draining"`
		LastSeenMS float64  `json:"last_seen_ms"`
		Capacity   int      `json:"capacity"`
		Queued     int64    `json:"queued"`
		InFlight   int64    `json:"in_flight"`
		UptimeS    float64  `json:"uptime_s"`
		Markets    []string `json:"markets"`
		Cache      *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
			Builds int64 `json:"builds"`
		} `json:"engine_cache"`
	} `json:"members"`
	Placements map[string]struct {
		Node  string `json:"node"`
		Epoch int64  `json:"epoch"`
	} `json:"placements"`
	Campaigns  map[string]int `json:"campaigns"`
	CacheTotal struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
		Builds int64 `json:"builds"`
	} `json:"engine_cache_total"`
	Evictions []struct {
		Node         string    `json:"node"`
		Time         time.Time `json:"time"`
		Reason       string    `json:"reason"`
		ReplacedJobs int       `json:"replaced_jobs"`
	} `json:"evictions"`
}

func runFleet(args []string) {
	if len(args) < 1 {
		fail("usage: magusctl fleet <status|drain|evict> [flags]")
	}
	verb := args[0]
	fs := flag.NewFlagSet("magusctl fleet "+verb, flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "fleet coordinator base URL")
	node := fs.String("node", "", "target worker node id (required for drain and evict)")
	retries := fs.Int("retries", 3, "attempts per request when the coordinator is draining or unreachable")
	retryBackoff := fs.Duration("retry-backoff", 500*time.Millisecond, "initial retry delay (doubles per attempt, jittered; a Retry-After hint overrides)")
	_ = fs.Parse(args[1:])
	r := newRetrier(*retries, *retryBackoff)

	switch verb {
	case "status":
		fleetStatus(r, *server)
	case "drain", "evict":
		if *node == "" {
			fail("fleet %s: -node is required", verb)
		}
		fleetNodeOp(r, *server, verb, *node)
	default:
		fail("unknown fleet subcommand %q (want status, drain or evict)", verb)
	}
}

func fleetStatus(r *retrier, server string) {
	resp := r.do("fleet status", func() (*http.Response, error) {
		return http.Get(server + "/fleet/status")
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("fleet status: %s (is %s a coordinator?)", resp.Status, server)
	}
	var st fleetStatusView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fail("fleet status: decode: %v", err)
	}

	fmt.Printf("coordinator %s, up %s\n", st.Coordinator, time.Duration(st.UptimeS*float64(time.Second)).Round(time.Second))
	fmt.Printf("campaigns: %d total, %d finished, %d cancelled\n",
		st.Campaigns["total"], st.Campaigns["finished"], st.Campaigns["cancelled"])
	total := st.CacheTotal
	if lookups := total.Hits + total.Misses; lookups > 0 {
		fmt.Printf("engine cache fleet-wide: %d builds, %.0f%% hit rate\n",
			total.Builds, 100*float64(total.Hits)/float64(lookups))
	}

	fmt.Printf("\n%-20s %-7s %-9s %5s %6s %8s %8s  %s\n",
		"node", "state", "last-seen", "cap", "queued", "inflight", "uptime", "markets")
	for _, m := range st.Members {
		state := "alive"
		if m.Draining {
			state = "drain"
		}
		if !m.Alive {
			state = "stale"
		}
		fmt.Printf("%-20s %-7s %8.0fms %5d %6d %8d %7.0fs  %s\n",
			m.NodeID, state, m.LastSeenMS, m.Capacity, m.Queued, m.InFlight,
			m.UptimeS, strings.Join(m.Markets, ","))
	}

	if len(st.Placements) > 0 {
		markets := make([]string, 0, len(st.Placements))
		for m := range st.Placements {
			markets = append(markets, m)
		}
		sort.Strings(markets)
		fmt.Printf("\n%-16s %-20s %s\n", "market", "owner", "epoch")
		for _, m := range markets {
			p := st.Placements[m]
			fmt.Printf("%-16s %-20s %5d\n", m, p.Node, p.Epoch)
		}
	}

	for _, ev := range st.Evictions {
		fmt.Printf("\nevicted %s at %s (%s), %d jobs re-placed",
			ev.Node, ev.Time.Format(time.TimeOnly), ev.Reason, ev.ReplacedJobs)
	}
	if len(st.Evictions) > 0 {
		fmt.Println()
	}
}

func fleetNodeOp(r *retrier, server, verb, node string) {
	body := fmt.Sprintf(`{"node_id":%q}`, node)
	resp := r.do("fleet "+verb, func() (*http.Response, error) {
		return http.Post(server+"/fleet/"+verb, "application/json", strings.NewReader(body))
	})
	defer resp.Body.Close()
	var ack map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		fail("fleet %s: decode: %v", verb, err)
	}
	if resp.StatusCode != http.StatusOK {
		fail("fleet %s %s: %s (%v)", verb, node, resp.Status, ack["error"])
	}
	fmt.Printf("fleet %s %s: ok\n", verb, node)
}
