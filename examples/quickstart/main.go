// Quickstart: build a synthetic suburban market, take one sector off-air
// for a planned upgrade, and let Magus find the neighbor power/tilt
// configuration that recovers part of the lost service performance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"magus"
)

func main() {
	// A 6 x 6 km suburban market on a 200 m analysis grid. The engine
	// synthesizes the topology, path loss and user distribution, then
	// runs a planner pass so the baseline C_before is realistic.
	engine, err := magus.NewEngine(magus.SetupConfig{
		Seed:        42,
		Class:       magus.Suburban,
		RegionSpanM: 6000,
		CellSizeM:   200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d sites, %d sectors, %.0f users\n",
		len(engine.Net.Sites), engine.Net.NumSectors(), engine.Model.TotalUE())

	// Scenario (a): the central site's first sector goes down for a
	// planned upgrade. Joint tuning (tilt then power) of its neighbors.
	plan, err := engine.Mitigate(magus.SingleSector, magus.Joint, magus.Performance)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplanned upgrade takes sector %v off-air\n", plan.Targets)
	fmt.Printf("  f(C_before)  = %8.1f   (normal operation)\n", plan.UtilityBefore)
	fmt.Printf("  f(C_upgrade) = %8.1f   (sector down, nothing tuned)\n", plan.UtilityUpgrade)
	fmt.Printf("  f(C_after)   = %8.1f   (sector down, neighbors tuned by Magus)\n", plan.UtilityAfter)
	fmt.Printf("  recovery     = %7.1f%%  of the upgrade-induced loss\n", 100*plan.RecoveryRatio())

	fmt.Printf("\ntuning steps toward C_after (%d total, %d model evaluations):\n",
		len(plan.Search.Steps), plan.Search.Evaluations)
	for i, step := range plan.Search.Steps {
		fmt.Printf("  %2d. %v\n", i+1, step.Change)
	}
}
