// Package render draws the model's spatial fields — path-loss rasters
// (Figure 3), service coverage maps (Figures 4, 5, 8, 10), and
// before/after tuning comparisons (Figure 7) — as ASCII art for
// terminals and as PGM/PPM images for files. Everything is stdlib-only;
// the PGM/PPM formats are plain-text Netpbm, viewable with any image
// tool.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"magus/internal/geo"
)

// asciiRamp orders glyphs from low to high intensity.
const asciiRamp = " .:-=+*#%@"

// Heatmap renders a scalar field over a grid. Values may contain -Inf
// (rendered as the lowest glyph). Rows are emitted north-up (row 0 of
// the output is the grid's top row).
func Heatmap(grid *geo.Grid, values []float64, maxWidth int) (string, error) {
	if len(values) != grid.NumCells() {
		return "", fmt.Errorf("render: %d values for %d cells", len(values), grid.NumCells())
	}
	if maxWidth <= 0 {
		maxWidth = 78
	}
	step := 1
	for grid.Cols/step > maxWidth {
		step++
	}
	lo, hi := finiteRange(values)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for row := grid.Rows - 1; row >= 0; row -= step {
		for col := 0; col < grid.Cols; col += step {
			v := values[grid.Index(col, row)]
			idx := 0
			if !math.IsInf(v, -1) {
				idx = int((v - lo) / span * float64(len(asciiRamp)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(asciiRamp) {
					idx = len(asciiRamp) - 1
				}
			}
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "range: [%.1f, %.1f]\n", lo, hi)
	return b.String(), nil
}

// finiteRange returns the min and max of the finite values, defaulting
// to [0, 1] when none exist.
func finiteRange(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		return 0, 1
	}
	return lo, hi
}

// CoverageASCII renders a serving-sector map: cells served by the same
// sector get the same letter (cycled through the alphabet by sector ID),
// and out-of-service cells are '#' — the black pixels of Figure 4.
func CoverageASCII(grid *geo.Grid, serving []int, maxWidth int) (string, error) {
	if len(serving) != grid.NumCells() {
		return "", fmt.Errorf("render: %d serving entries for %d cells", len(serving), grid.NumCells())
	}
	if maxWidth <= 0 {
		maxWidth = 78
	}
	step := 1
	for grid.Cols/step > maxWidth {
		step++
	}
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	for row := grid.Rows - 1; row >= 0; row -= step {
		for col := 0; col < grid.Cols; col += step {
			s := serving[grid.Index(col, row)]
			if s < 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(letters[s%len(letters)])
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// WritePGM emits a scalar field as a plain (P2) grayscale Netpbm image,
// darker = lower value, with -Inf rendered black.
func WritePGM(w io.Writer, grid *geo.Grid, values []float64) error {
	if len(values) != grid.NumCells() {
		return fmt.Errorf("render: %d values for %d cells", len(values), grid.NumCells())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n%d %d\n255\n", grid.Cols, grid.Rows)
	lo, hi := finiteRange(values)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for row := grid.Rows - 1; row >= 0; row-- {
		for col := 0; col < grid.Cols; col++ {
			v := values[grid.Index(col, row)]
			level := 0
			if !math.IsInf(v, -1) && !math.IsNaN(v) {
				level = int((v - lo) / span * 255)
				if level < 0 {
					level = 0
				}
				if level > 255 {
					level = 255
				}
			}
			if col > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", level)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// sectorColor derives a stable, distinguishable RGB color for a sector
// ID by hashing it onto a hue wheel.
func sectorColor(id int) (r, g, b int) {
	h := float64((id*2654435761)%360) / 60 // hue in [0, 6)
	c := 200
	x := int(float64(c) * (1 - math.Abs(math.Mod(h, 2)-1)))
	switch int(h) {
	case 0:
		return c, x, 0
	case 1:
		return x, c, 0
	case 2:
		return 0, c, x
	case 3:
		return 0, x, c
	case 4:
		return x, 0, c
	default:
		return c, 0, x
	}
}

// WritePPM emits a serving-sector map as a plain (P3) color Netpbm
// image: one stable color per serving sector, black for out-of-service
// cells — the Figure 4 rendering.
func WritePPM(w io.Writer, grid *geo.Grid, serving []int) error {
	if len(serving) != grid.NumCells() {
		return fmt.Errorf("render: %d serving entries for %d cells", len(serving), grid.NumCells())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P3\n%d %d\n255\n", grid.Cols, grid.Rows)
	for row := grid.Rows - 1; row >= 0; row-- {
		for col := 0; col < grid.Cols; col++ {
			s := serving[grid.Index(col, row)]
			r, g, b := 0, 0, 0
			if s >= 0 {
				r, g, b = sectorColor(s)
			}
			if col > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d %d %d", r, g, b)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// SideBySide joins multi-line blocks horizontally with a gutter, for
// before/after comparisons like Figure 7.
func SideBySide(gutter string, blocks ...string) string {
	split := make([][]string, len(blocks))
	width := make([]int, len(blocks))
	rows := 0
	for i, blk := range blocks {
		split[i] = strings.Split(strings.TrimRight(blk, "\n"), "\n")
		if len(split[i]) > rows {
			rows = len(split[i])
		}
		for _, line := range split[i] {
			if len(line) > width[i] {
				width[i] = len(line)
			}
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for i := range split {
			line := ""
			if r < len(split[i]) {
				line = split[i][r]
			}
			fmt.Fprintf(&b, "%-*s", width[i], line)
			if i < len(split)-1 {
				b.WriteString(gutter)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
