package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"magus/internal/core"
	"magus/internal/topology"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	engine, err := core.NewEngine(core.SetupConfig{
		Seed:          3,
		Class:         topology.Suburban,
		RegionSpanM:   6000,
		CellSizeM:     200,
		EqualizeSteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(engine)
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("bad JSON (%d): %v\n%s", rec.Code, err, rec.Body.String()[:min(200, rec.Body.Len())])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	decode(t, rec, &body)
	if body["status"] != "ok" || body["class"] != "suburban" {
		t.Errorf("health body = %v", body)
	}
	if body["sectors"].(float64) <= 0 {
		t.Error("no sectors reported")
	}
}

func TestSectorsGeoJSON(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/sectors")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("content type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []any  `json:"features"`
	}
	decode(t, rec, &fc)
	if fc.Type != "FeatureCollection" || len(fc.Features) == 0 {
		t.Errorf("geojson = %q with %d features", fc.Type, len(fc.Features))
	}
}

func TestCoverageStrideValidation(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/coverage?stride=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("stride=0 status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/coverage?stride=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("stride=abc status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/coverage?stride=3"); rec.Code != http.StatusOK {
		t.Errorf("stride=3 status = %d, want 200", rec.Code)
	}
}

func TestPlanEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/plan?scenario=a&method=joint")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Recovery       float64 `json:"recovery"`
		UtilityBefore  float64 `json:"utility_before"`
		UtilityUpgrade float64 `json:"utility_upgrade"`
		UtilityAfter   float64 `json:"utility_after"`
		Targets        []int   `json:"targets"`
	}
	decode(t, rec, &body)
	if len(body.Targets) != 1 {
		t.Errorf("targets = %v, want one", body.Targets)
	}
	// The search's final step may overshoot f(C_before) slightly, so
	// allow a small margin above it.
	if !(body.UtilityBefore*1.01 >= body.UtilityAfter && body.UtilityAfter >= body.UtilityUpgrade) {
		t.Errorf("utility ordering broken: %+v", body)
	}
	if body.Recovery < 0 || body.Recovery > 1.05 {
		t.Errorf("recovery = %v", body.Recovery)
	}
}

func TestPlanValidation(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/plan?scenario=z",
		"/plan?method=bogus",
		"/plan?utility=bogus",
	} {
		if rec := get(t, s, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, rec.Code)
		}
	}
}

func TestRunbookEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/runbook?scenario=a")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var rb struct {
		Steps    []any `json:"steps"`
		Rollback []any `json:"rollback"`
	}
	decode(t, rec, &rb)
	if len(rb.Steps) == 0 || len(rb.Rollback) == 0 {
		t.Errorf("runbook steps=%d rollback=%d", len(rb.Steps), len(rb.Rollback))
	}
}

func TestOutageEndpoint(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/outage?sector=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad sector status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/outage?sector=99999"); rec.Code != http.StatusNotFound {
		t.Errorf("out-of-range sector status = %d, want 404", rec.Code)
	}
	// Pick a sector inside the tuning area: that is the planner's
	// default precomputation scope.
	sector := -1
	for b := range s.engine.Net.Sectors {
		if s.engine.TuningArea().Contains(s.engine.Net.Sectors[b].Pos) {
			sector = b
			break
		}
	}
	if sector < 0 {
		sector = s.engine.Net.Sites[s.engine.Net.CentralSite()].Sectors[0]
	}
	rec := get(t, s, "/outage?sector="+strconv.Itoa(sector))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Precomputed    bool    `json:"precomputed"`
		UtilityOutage  float64 `json:"utility_outage"`
		UtilityApplied float64 `json:"utility_applied"`
	}
	decode(t, rec, &body)
	if !body.Precomputed {
		t.Error("tuning-area outage should be precomputed")
	}
	if body.UtilityApplied < body.UtilityOutage {
		t.Error("applying the response worsened utility")
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	paths := []string{"/healthz", "/plan?scenario=a&method=power", "/sectors",
		"/coverage?stride=4", "/plan?scenario=b&method=tilt"}
	errs := make(chan string, len(paths)*4)
	for i := 0; i < 4; i++ {
		for _, p := range paths {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- path
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for p := range errs {
		t.Errorf("concurrent request %s failed", p)
	}
}

func TestUnknownPath(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/schedule?scenario=a&hours=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		DurationHours int `json:"duration_hours"`
		BestStart     int `json:"best_start"`
		Windows       []struct {
			StartHour            int  `json:"StartHour"`
			TouchesBusinessHours bool `json:"TouchesBusinessHours"`
		} `json:"windows"`
	}
	decode(t, rec, &body)
	if body.DurationHours != 5 || len(body.Windows) != 24 {
		t.Errorf("schedule body: hours=%d windows=%d", body.DurationHours, len(body.Windows))
	}
	// Off-peak recommendation: the best start avoids business hours.
	if body.BestStart >= 5 && body.BestStart < 22 {
		t.Errorf("best start %02d:00, expected night", body.BestStart)
	}
	if rec := get(t, s, "/schedule?hours=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad hours status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/schedule?hours=99"); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range hours status = %d, want 400", rec.Code)
	}
}
