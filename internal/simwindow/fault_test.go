package simwindow

import "testing"

func TestParseFaultRoundTrip(t *testing.T) {
	cases := []string{
		"push-fail@3",
		"push-delay@2+5",
		"sector-down@20:17",
		"surge@30+10:12:x1.8",
	}
	for _, s := range cases {
		f, err := ParseFault(s)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", s, err)
		}
		if got := f.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		back, err := ParseFault(f.String())
		if err != nil || back != f {
			t.Fatalf("re-parse %q: %+v vs %+v (%v)", s, back, f, err)
		}
	}
}

func TestParseFaultsList(t *testing.T) {
	fs, err := ParseFaults(" push-fail@1 , surge@5+2:3:x2 ")
	if err != nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if len(fs) != 2 || fs[0].Kind != FaultPushFail || fs[1].Kind != FaultLoadSurge {
		t.Fatalf("got %+v", fs)
	}
	if fs[1].Factor != 2 || fs[1].DurationTicks != 2 || fs[1].Sector != 3 {
		t.Fatalf("surge fields wrong: %+v", fs[1])
	}
	if got, err := ParseFaults("   "); err != nil || got != nil {
		t.Fatalf("blank script: %v, %v", got, err)
	}
}

func TestParseFaultErrors(t *testing.T) {
	bad := []string{
		"",
		"push-fail",
		"push-fail@x",
		"push-delay@3",
		"sector-down@5",
		"surge@5:3:x2",
		"surge@5+2:3:xq",
		"meteor@5",
	}
	for _, s := range bad {
		if _, err := ParseFault(s); err == nil {
			t.Fatalf("ParseFault(%q) accepted", s)
		}
	}
}
