package propagation

import (
	"sync"
	"testing"

	"magus/internal/geo"
	"magus/internal/terrain"
)

// TestSPMConcurrentReaders backs the concurrency contract documented on
// SPM: all query methods are pure reads, so any number of goroutines
// may share one SPM (and one terrain map) without synchronization. The
// parallel model build in netmodel relies on this. Run with -race.
func TestSPMConcurrentReaders(t *testing.T) {
	bounds := geo.NewRectCentered(geo.Point{}, 4000, 4000)
	terr := terrain.MustGenerate(terrain.Config{Seed: 9, Bounds: bounds, Resolution: 300})
	spm := MustNewSPM(2.635e9, terr)
	spm.JitterDB = 2 // exercise hashNoise too
	sec := testSector()

	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum := 0.0
			for step := 0; step < 200; step++ {
				p := geo.Point{
					X: -1800 + float64((i*37+step*13)%3600),
					Y: -1800 + float64((i*53+step*29)%3600),
				}
				sum += spm.PathLossDB(sec.Pos, sec.HeightM, p)
				sum += spm.SectorBase(sec, p)
				sum += spm.ElevationDeg(sec, p)
				sum += spm.SectorPathLossDB(sec, 4, p)
			}
			results[i] = sum
		}(i)
	}
	wg.Wait()

	// Determinism across goroutines reading the same points: goroutine
	// parameters differ, but re-running goroutine 0's walk serially must
	// reproduce its sum exactly.
	sum := 0.0
	for step := 0; step < 200; step++ {
		p := geo.Point{
			X: -1800 + float64((step*13)%3600),
			Y: -1800 + float64((step*29)%3600),
		}
		sum += spm.PathLossDB(sec.Pos, sec.HeightM, p)
		sum += spm.SectorBase(sec, p)
		sum += spm.ElevationDeg(sec, p)
		sum += spm.SectorPathLossDB(sec, 4, p)
	}
	if sum != results[0] {
		t.Fatalf("concurrent read diverged from serial: %v vs %v", results[0], sum)
	}
}
