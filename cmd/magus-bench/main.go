// Command magus-bench regenerates the paper's evaluation artifacts:
// every table and figure of the CoNEXT 2015 Magus paper, printed as the
// same rows and series the paper reports.
//
// Usage:
//
//	magus-bench [-exp all|table1|table2|fig2|fig8|fig10|fig11|fig12|fig13|maps|calendar] [-seeds 1,2,3]
//	            [-json results.json] [-model-cache dir]
//	            [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	magus-bench -exp sim-window -grid-scale 1,1.5,2
//	magus-bench -compare [-gate regexp] [-regress-pct 20] old.json new.json
//
// With -json, per-experiment timings are also written to the given path
// as a JSON array of {name, iterations, ns_per_op} records — the shape
// CI trend dashboards ingest.
//
// With -compare, no experiments run: the two timing files (either the
// -json record shape or raw `go test -bench` output) are diffed
// per-benchmark, and the process exits non-zero when a benchmark
// matching -gate regressed its ns/op by more than -regress-pct percent.
//
// Absolute numbers differ from the paper (the substrate is a synthetic
// market, not a production carrier); the qualitative shape — who wins,
// by roughly what factor, where the crossovers fall — is the
// reproduction target. See EXPERIMENTS.md for the side-by-side record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"magus/internal/experiments"
)

// main delegates to run so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, fig2, fig8, fig10, fig11, fig12, fig13, maps, calendar, ext-hybrid, ext-signaling, ext-outage, ext-loadbal, ext-uedist, ext-carriers, ops-week, sim-window, wave-season, executor-chaos, parallel-joint")
	seedsFlag := flag.String("seeds", "1,2,3", "comma-separated area replicate seeds for table1/fig13")
	jsonPath := flag.String("json", "", "also write per-experiment timings to this path as JSON")
	workers := flag.Int("workers", 0, "in-search candidate-scoring parallelism (0 = sequential; parallel-joint defaults to NumCPU)")
	modelCacheDir := flag.String("model-cache", "", "directory for on-disk model snapshots; repeat runs over the same markets skip the model build")
	gridScale := flag.String("grid-scale", "", "with -exp sim-window: comma-separated grid-density multipliers (e.g. 1,1.5,2), each dividing the cell size; sweeps the simulator's per-tick measurement cost, incremental KPI engine vs full-scan")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	compareMode := flag.Bool("compare", false, "compare two timing files (old new) instead of running experiments")
	gatePattern := flag.String("gate", "", "with -compare: regexp of benchmark names whose regression fails the run (empty = report only)")
	regressPct := flag.Float64("regress-pct", 20, "with -compare: max tolerated ns/op increase, percent, for gated benchmarks")
	flag.Parse()
	if *compareMode {
		return runCompare(flag.Args(), *gatePattern, *regressPct)
	}
	experiments.SetSearchWorkers(*workers)
	if err := experiments.SetModelCacheDir(*modelCacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "magus-bench:", err)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "magus-bench:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "magus-bench:", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "magus-bench:", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "magus-bench:", err)
			}
			f.Close()
		}()
	}

	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "magus-bench:", err)
		return 2
	}

	runners := map[string]func() (fmt.Stringer, error){
		"table1": func() (fmt.Stringer, error) {
			return experiments.RunTable1(experiments.Table1Options{Seeds: seeds})
		},
		"table2": func() (fmt.Stringer, error) { return experiments.RunTable2(seeds[0]) },
		"fig2":   func() (fmt.Stringer, error) { return experiments.RunFigure2(seeds[0]) },
		"fig8":   func() (fmt.Stringer, error) { return experiments.RunFigure8(seeds[0]) },
		"fig10":  func() (fmt.Stringer, error) { return experiments.RunFigure10(seeds[0]) },
		"fig11":  func() (fmt.Stringer, error) { return experiments.RunFigure11(seeds[0]) },
		"fig12":  func() (fmt.Stringer, error) { return experiments.RunFigure12(seeds[0]) },
		"fig13": func() (fmt.Stringer, error) {
			return experiments.RunFigure13(experiments.Figure13Options{Seeds: seeds})
		},
		"maps":     func() (fmt.Stringer, error) { return experiments.RunMaps(seeds[0]) },
		"calendar": func() (fmt.Stringer, error) { return experiments.RunCalendar(seeds[0]), nil },
		// Extensions beyond the paper's evaluation (its Sections 2 and 8
		// roadmap); see DESIGN.md section 8.
		"ext-hybrid":    func() (fmt.Stringer, error) { return experiments.RunHybridSweep(seeds[0]) },
		"ext-signaling": func() (fmt.Stringer, error) { return experiments.RunSignaling(seeds[0]) },
		"ext-outage":    func() (fmt.Stringer, error) { return experiments.RunOutageStudy(seeds[0]) },
		"ext-loadbal":   func() (fmt.Stringer, error) { return experiments.RunLoadBalance(seeds[0]) },
		"ext-uedist":    func() (fmt.Stringer, error) { return experiments.RunUEDistribution(seeds[0]) },
		"ext-carriers":  func() (fmt.Stringer, error) { return experiments.RunMultiCarrier(seeds[0]) },
		"ops-week":      func() (fmt.Stringer, error) { return experiments.RunOpsWeek(seeds[0], 2) },
		"sim-window": func() (fmt.Stringer, error) {
			if *gridScale != "" {
				scales, err := parseScales(*gridScale)
				if err != nil {
					return nil, err
				}
				return experiments.RunSimWindowScale(seeds[0], scales)
			}
			return experiments.RunSimWindow(seeds[0])
		},
		// wave-season is the upgrade-season scheduler study: annealed
		// wave assignment vs naive round-robin on season-min f(C_after).
		"wave-season": func() (fmt.Stringer, error) { return experiments.RunWaveSeason(seeds[0]) },
		// executor-chaos is the guarded runbook executor's robustness
		// study: the same gradual upgrade executed end to end at
		// increasing injected fault rates, measuring retries spent and
		// utility-floor exposure.
		"executor-chaos": func() (fmt.Stringer, error) { return experiments.RunExecutorChaos(seeds[0]) },
		// parallel-joint is this reproduction's own throughput study
		// (sequential vs parallel joint search, speculate vs rescore);
		// run on demand, not part of "all".
		"parallel-joint": func() (fmt.Stringer, error) {
			return experiments.RunParallelJoint(seeds[0], *workers)
		},
	}
	order := []string{"calendar", "fig2", "maps", "fig8", "fig10", "table1", "fig11", "fig12", "table2", "fig13",
		"ext-hybrid", "ext-signaling", "ext-outage", "ext-loadbal", "ext-uedist", "ext-carriers", "ops-week",
		"sim-window", "wave-season", "executor-chaos"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "magus-bench: unknown experiment %q\n", *exp)
			return 2
		}
		selected = []string{*exp}
	}

	var records []benchRecord
	for _, name := range selected {
		start := time.Now()
		result, err := runners[name]()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "magus-bench: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, elapsed.Seconds(), result)
		records = append(records, benchRecord{Name: name, Iterations: 1, NsPerOp: elapsed.Nanoseconds()})
		if timed, ok := result.(experiments.Timed); ok {
			for _, t := range timed.Timings() {
				records = append(records, benchRecord{Name: name + "/" + t.Name, Iterations: t.Iterations, NsPerOp: t.NsPerOp})
			}
		}
	}

	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "magus-bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// benchRecord is one timing in the -json output, shaped like a Go
// benchmark result so downstream tooling can treat the two alike.
type benchRecord struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
}

// writeBenchJSON writes records to path as an indented JSON array.
func writeBenchJSON(path string, records []benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseScales(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad grid scale %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no grid scales given")
	}
	return out, nil
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return out, nil
}
