// Package core is the Magus engine: the paper's primary contribution
// assembled into one high-level workflow (Figure 6). It wires together
// the substrates — topology, terrain, propagation, the grid analysis
// model — and exposes the operations an operator needs around a planned
// upgrade:
//
//  1. build a model of an area from operational-style data;
//  2. given the sectors going off-air, search for the best neighbor
//     power/tilt configuration C_after before the work starts
//     (proactive model-based tuning, Section 5);
//  3. plan the gradual user migration that holds the utility above
//     f(C_after) and avoids synchronized handovers (Section 6);
//  4. quantify the alternative strategies (reactive feedback baseline).
package core

import (
	"context"
	"fmt"

	"magus/internal/config"
	"magus/internal/feedback"
	"magus/internal/geo"
	"magus/internal/migrate"
	"magus/internal/modelcache"
	"magus/internal/netmodel"
	"magus/internal/propagation"
	"magus/internal/sanitize"
	"magus/internal/search"
	"magus/internal/terrain"
	"magus/internal/topology"
	"magus/internal/upgrade"
	"magus/internal/utility"
)

// SetupConfig describes a synthetic evaluation area. The zero value of
// optional fields selects defaults tuned for second-scale experiments.
type SetupConfig struct {
	// Seed drives every random substrate (topology, terrain).
	Seed int64
	// Class selects rural, suburban or urban planning parameters.
	Class topology.AreaClass
	// RegionSpanM is the analysis region edge in meters (default 12000;
	// the paper uses 30 km analysis regions around 10 km tuning areas).
	RegionSpanM float64
	// TuningSpanM is the inner tuning area edge (default RegionSpanM/3,
	// mirroring the paper's 10-in-30 ratio).
	TuningSpanM float64
	// CellSizeM is the grid resolution (default 200; the paper uses
	// 100 m grids — set 100 for full fidelity at 4x the compute).
	CellSizeM float64
	// WithTerrain enables the synthetic terrain/clutter corrections.
	WithTerrain bool
	// FrequencyHz is the carrier frequency (default 2.635 GHz, band 7).
	FrequencyHz float64
	// EqualizeSteps bounds the planner pass that locally optimizes
	// C_before (default 300; 0 keeps the raw defaults).
	EqualizeSteps int
	// EqualizeUtility is the planner's objective (default
	// utility.Performance).
	EqualizeUtility utility.Func
	// EqualizeUnitDB is the planner's tuning granularity (default 2 dB
	// and 2 tilt steps: real planning works at coarser granularity than
	// Magus's 1 dB search, which is what leaves the sub-step slack the
	// paper's mitigation exploits).
	EqualizeUnitDB float64
	// NeighborRadiusM overrides the neighbor-set radius (default
	// 2.5 x the class inter-site distance).
	NeighborRadiusM float64
	// SearchWorkers is the default candidate-scoring parallelism for
	// mitigation searches planned by this engine (see search.Options
	// .Workers). Zero or one keeps the exact sequential path. The
	// planner's Equalize pass always runs sequentially so a cached or
	// shared baseline is identical whatever the worker setting.
	SearchWorkers int
	// FixedPoint makes mitigation searches default to the batched
	// quantized scoring path (see MitigateRequest.FixedPoint, which can
	// also enable it per plan). Planning (Equalize) is unaffected.
	FixedPoint bool
	// Params optionally overrides the class planning parameters.
	Params *topology.ClassParams
	// ModelCache optionally supplies an on-disk snapshot cache for the
	// contributor arrays — the dominant cost of NewEngine. Nil builds
	// directly. The cache keys on the model inputs, so a stale snapshot
	// can never be served for a changed topology, SPM or grid.
	ModelCache *modelcache.Cache
}

func (c *SetupConfig) applyDefaults() {
	if c.RegionSpanM <= 0 {
		c.RegionSpanM = 12000
	}
	if c.TuningSpanM <= 0 {
		c.TuningSpanM = c.RegionSpanM / 3
	}
	if c.CellSizeM <= 0 {
		c.CellSizeM = 200
	}
	if c.FrequencyHz <= 0 {
		c.FrequencyHz = 2.635e9
	}
	if c.EqualizeSteps < 0 {
		c.EqualizeSteps = 0
	}
}

// Engine is a ready-to-plan Magus instance for one area.
type Engine struct {
	Net     *topology.Network
	Terrain *terrain.Map // nil without terrain
	SPM     *propagation.SPM
	Model   *netmodel.Model
	// Before is the planner-optimized C_before state with the user
	// distribution assigned.
	Before *netmodel.State

	cfg        SetupConfig
	tuningArea geo.Rect

	// Sanitation state of the last UseDataset call (see dataset.go):
	// quarantined sectors are excluded from plan neighbor sets.
	sanitation  *sanitize.Report
	quarantined map[int]bool
}

// NewEngine synthesizes an area per cfg and prepares the baseline.
func NewEngine(cfg SetupConfig) (*Engine, error) {
	cfg.applyDefaults()
	region := geo.NewRectCentered(geo.Point{}, cfg.RegionSpanM, cfg.RegionSpanM)

	net, err := topology.Generate(topology.GenConfig{
		Seed:   cfg.Seed,
		Class:  cfg.Class,
		Bounds: region,
		Params: cfg.Params,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var terr *terrain.Map
	if cfg.WithTerrain {
		terr, err = terrain.Generate(terrain.Config{
			Seed:         cfg.Seed + 1,
			Bounds:       region.Expand(1000),
			UrbanCenters: []geo.Point{region.Center()},
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	spm, err := propagation.NewSPM(cfg.FrequencyHz, terr)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if terr != nil {
		// Full diffraction sampling is expensive at region scale; clutter
		// corrections carry most of the spatial irregularity.
		spm.DiffractionWeight = 0
	}

	model, err := cfg.ModelCache.LoadOrBuild(net, spm, region, netmodel.Params{CellSizeM: cfg.CellSizeM})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	before := model.NewState(config.New(net))
	before.AssignUsersUniform()
	if cfg.EqualizeSteps > 0 {
		obj := cfg.EqualizeUtility
		if obj.U == nil {
			obj = utility.Performance
		}
		unit := cfg.EqualizeUnitDB
		if unit <= 0 {
			unit = 2
		}
		// Rural planning is power-limited: planners already spend the
		// hardware budget to cover large cells ("use up most of the
		// available power", Section 6), so the planner may exceed the
		// planned default. Dense-area planning is interference-limited:
		// the planned power sits below the hardware rating, and the
		// headroom above it is the emergency margin Magus spends.
		if _, err := search.Equalize(before, search.Options{
			MaxSteps:          cfg.EqualizeSteps,
			Util:              obj,
			PowerUnitDB:       unit,
			TiltUnit:          int(unit + 0.5),
			CapAtDefaultPower: true,
		}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		// Re-derive the user distribution from the planned serving map.
		before.AssignUsersUniform()
	}

	return &Engine{
		Net:        net,
		Terrain:    terr,
		SPM:        spm,
		Model:      model,
		Before:     before,
		cfg:        cfg,
		tuningArea: geo.NewRectCentered(region.Center(), cfg.TuningSpanM, cfg.TuningSpanM),
	}, nil
}

// MustNewEngine is NewEngine that panics on error.
func MustNewEngine(cfg SetupConfig) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// TuningArea returns the inner area whose sectors are subject to
// upgrades.
func (e *Engine) TuningArea() geo.Rect { return e.tuningArea }

// NeighborRadius returns the radius used to build the neighbor set B:
// by default 1.6 x the inter-site distance, i.e. the first neighbor tier
// plus co-sited sectors — "an offline base station may have tens of
// neighbors" (Section 1), not the whole market.
func (e *Engine) NeighborRadius() float64 {
	if e.cfg.NeighborRadiusM > 0 {
		return e.cfg.NeighborRadiusM
	}
	return 1.6 * e.Net.Params.InterSiteDistanceM
}

// Method selects the tuning strategy of Table 1.
type Method int

const (
	// PowerOnly is Algorithm 1 over transmit powers.
	PowerOnly Method = iota
	// TiltOnly is the greedy per-neighbor uptilt search.
	TiltOnly
	// Joint is tilt-tuning followed by power-tuning.
	Joint
	// NaiveBaseline is the per-neighbor power climb Figure 13 compares
	// against.
	NaiveBaseline
	// Annealed is a simulated-annealing search over the neighbors'
	// powers and tilts — the "more sophisticated version of Magus" the
	// paper speculates could escape the heuristic's local optima in
	// urban areas (Section 6).
	Annealed
)

// String names the method as in Table 1.
func (m Method) String() string {
	switch m {
	case PowerOnly:
		return "power-tuning"
	case TiltOnly:
		return "tilt-tuning"
	case Joint:
		return "joint"
	case NaiveBaseline:
		return "naive"
	case Annealed:
		return "annealed"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Plan is a computed upgrade mitigation.
type Plan struct {
	// Scenario and Method identify the experiment cell.
	Scenario upgrade.Scenario
	Method   Method
	// Targets are the sectors going off-air; Neighbors the tuned set B.
	Targets   []int
	Neighbors []int
	// Upgrade is the C_upgrade state (targets off, nothing tuned);
	// After is the C_after state found by the search. Both carry the
	// engine's fixed user distribution.
	Upgrade *netmodel.State
	After   *netmodel.State
	// UtilityBefore/Upgrade/After are f(C_before), f(C_upgrade),
	// f(C_after) under the plan's utility function.
	UtilityBefore  float64
	UtilityUpgrade float64
	UtilityAfter   float64
	// Search reports the accepted steps and evaluation count.
	Search *search.Result
	// Util is the objective the plan optimized.
	Util utility.Func
	// Sanitation carries the engine's operational-data report when the
	// plan was computed from an ingested dataset (see Engine.UseDataset);
	// nil on purely synthetic engines.
	Sanitation *sanitize.Report

	engine *Engine
}

// RecoveryRatio is the paper's Formula 7 for this plan.
func (p *Plan) RecoveryRatio() float64 {
	return utility.RecoveryRatio(p.UtilityBefore, p.UtilityUpgrade, p.UtilityAfter)
}

// Mitigate plans the proactive model-based mitigation for an upgrade
// scenario: it derives the target sectors, evaluates C_upgrade, runs the
// selected search for C_after, and returns the complete plan.
func (e *Engine) Mitigate(sc upgrade.Scenario, method Method, util utility.Func) (*Plan, error) {
	return e.MitigateContext(context.Background(), sc, method, util)
}

// MitigateContext is Mitigate bounded by a context: the underlying
// search checks ctx every iteration, so a cancelled or expired context
// abandons the plan promptly and returns the context's error.
func (e *Engine) MitigateContext(ctx context.Context, sc upgrade.Scenario, method Method, util utility.Func) (*Plan, error) {
	targets, err := upgrade.Targets(e.Net, sc, e.tuningArea)
	if err != nil {
		return nil, err
	}
	return e.MitigateTargetsContext(ctx, sc, method, util, targets)
}

// MitigateTargets is Mitigate with an explicit target sector set.
func (e *Engine) MitigateTargets(sc upgrade.Scenario, method Method, util utility.Func, targets []int) (*Plan, error) {
	return e.MitigateTargetsContext(context.Background(), sc, method, util, targets)
}

// MitigateTargetsContext is MitigateTargets bounded by a context (see
// MitigateContext).
func (e *Engine) MitigateTargetsContext(ctx context.Context, sc upgrade.Scenario, method Method, util utility.Func, targets []int) (*Plan, error) {
	if targets == nil {
		targets = []int{} // non-nil: the request derives targets only when unset
	}
	return e.MitigatePlan(MitigateRequest{
		Ctx:      ctx,
		Scenario: sc,
		Method:   method,
		Util:     util,
		Targets:  targets,
	})
}

// MitigateRequest is the full parameter set of a mitigation plan. The
// shorthand Mitigate* methods construct one; callers that need the
// per-request knobs (explicit targets, worker override) build it
// directly.
type MitigateRequest struct {
	// Ctx bounds the search (nil means background).
	Ctx context.Context
	// Scenario and Method select the upgrade and tuning strategy.
	Scenario upgrade.Scenario
	Method   Method
	// Util is the objective (default utility.Performance).
	Util utility.Func
	// Targets are the off-air sectors; nil derives them from the
	// scenario over the engine's tuning area.
	Targets []int
	// Workers overrides the engine's SearchWorkers for this plan:
	// 0 inherits, 1 forces the exact sequential path, >1 scores
	// candidates on that many worker-local clones.
	Workers int
	// FixedPoint scores candidates on the engine's batched quantized
	// path (shared read-only state, int16 centi-dB inner loop, no clone
	// pool). Candidate ranking may deviate from the exact path by ≤0.1%
	// utility quantization error; committed plan utilities remain exact
	// full-scan values.
	FixedPoint bool
	// AnnealSeed seeds the Annealed method's private rand.Rand, so
	// annealing runs are reproducible per request and race-free under
	// parallel campaigns (0 selects the historical default of 1).
	AnnealSeed int64
}

// MitigatePlan plans the proactive mitigation described by req.
func (e *Engine) MitigatePlan(req MitigateRequest) (*Plan, error) {
	ctx := req.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	sc, method, util, targets := req.Scenario, req.Method, req.Util, req.Targets
	if targets == nil {
		var err error
		targets, err = upgrade.Targets(e.Net, sc, e.tuningArea)
		if err != nil {
			return nil, err
		}
	}
	workers := req.Workers
	if workers <= 0 {
		workers = e.cfg.SearchWorkers
	}
	if util.U == nil {
		util = utility.Performance
	}
	upgradeState := e.Before.Clone()
	for _, tg := range targets {
		if _, err := upgradeState.Apply(config.Change{Sector: tg, TurnOff: true}); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	neighbors := search.SortByDistanceTo(upgradeState,
		e.Net.NeighborSectors(targets, e.NeighborRadius()), targets)
	if len(e.quarantined) > 0 {
		// Quarantined sectors have untrustworthy data: never tune them.
		kept := neighbors[:0]
		for _, b := range neighbors {
			if !e.quarantined[b] {
				kept = append(kept, b)
			}
		}
		neighbors = kept
	}

	after := upgradeState.Clone()
	// Cap the search at f(C_before): mitigation recovers the loss, it
	// does not chase utility beyond normal operation. Before is shared by
	// every concurrent plan on this engine, so evaluate it read-only.
	utilityBefore := e.Before.UtilityRead(util)
	opts := search.Options{Util: util, CapUtility: utilityBefore, Ctx: ctx, Workers: workers, FixedPoint: req.FixedPoint || e.cfg.FixedPoint}
	var res *search.Result
	var err error
	switch method {
	case PowerOnly:
		res, err = search.Power(after, e.Before, neighbors, opts)
	case TiltOnly:
		res, err = search.Tilt(after, neighbors, opts)
	case Joint:
		res, err = search.Joint(after, e.Before, neighbors, opts)
	case NaiveBaseline:
		res, err = search.NaivePower(after, neighbors, opts)
	case Annealed:
		seed := req.AnnealSeed
		if seed == 0 {
			seed = 1
		}
		res, err = search.Anneal(after, neighbors, search.AnnealOptions{
			Options: opts,
			Seed:    seed,
		})
	default:
		return nil, fmt.Errorf("core: unknown method %d", int(method))
	}
	if err != nil {
		return nil, err
	}

	return &Plan{
		Scenario:       sc,
		Method:         method,
		Targets:        targets,
		Neighbors:      neighbors,
		Upgrade:        upgradeState,
		After:          after,
		UtilityBefore:  utilityBefore,
		UtilityUpgrade: upgradeState.Utility(util),
		UtilityAfter:   res.FinalUtility,
		Search:         res,
		Util:           util,
		Sanitation:     e.sanitation,
		engine:         e,
	}, nil
}

// GradualMigration computes the synchronized-handover-minimizing
// migration schedule for the plan (Section 6, Figure 11).
func (p *Plan) GradualMigration(opts migrate.Options) (*migrate.Plan, error) {
	if opts.Util.U == nil {
		opts.Util = p.Util
	}
	return migrate.Gradual(p.engine.Before, p.After, p.Targets, opts)
}

// OneShotMigration computes the direct-jump alternative for comparison.
func (p *Plan) OneShotMigration(opts migrate.Options) (*migrate.Plan, error) {
	if opts.Util.U == nil {
		opts.Util = p.Util
	}
	return migrate.OneShot(p.engine.Before, p.After, p.Targets, opts)
}

// ReactiveBaseline simulates the reactive feedback-based strategy for
// the plan's upgrade (Figure 12): tuning starts only after the targets
// go down and is driven by per-step measurements.
func (p *Plan) ReactiveBaseline(mode feedback.Mode, opts feedback.Options) (*feedback.Result, error) {
	if opts.Util.U == nil {
		opts.Util = p.Util
	}
	work := p.Upgrade.Clone()
	return feedback.Reactive(work, p.Neighbors, mode, opts)
}
