// Command magusd serves a Magus engine over HTTP: build the market model
// once at startup, then answer planning queries from operations tooling.
//
// Usage:
//
//	magusd [-listen :8080] [-class suburban] [-seed 1] [-workers N] [-pprof :6060]
//
// Endpoints (all GET, JSON/GeoJSON):
//
//	/healthz   liveness + market summary
//	/sectors   topology as GeoJSON
//	/coverage  baseline serving map as GeoJSON (?stride=N)
//	/plan      mitigation plan (?scenario=a|b|c&method=power|tilt|joint|naive|anneal)
//	/runbook   executable runbook with rollback (same parameters)
//	/outage    unplanned-outage response (?sector=N)
//
// Asynchronous campaigns (POST /campaigns, GET /campaigns/{id},
// POST /campaigns/{id}/cancel) run batches of planning jobs across
// markets on a worker pool; see magusctl campaign for a client.
//
// The server shuts down cleanly on SIGINT/SIGTERM, cancelling running
// campaigns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"magus"
	"magus/internal/experiments"
	"magus/internal/httpapi"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	classFlag := flag.String("class", "suburban", "market class: rural, suburban, urban")
	seed := flag.Int64("seed", 1, "market seed")
	workers := flag.Int("workers", 0, "default in-search candidate-scoring parallelism (0 = sequential; per-request ?workers= overrides)")
	pprofAddr := flag.String("pprof", "", "also serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.Parse()
	experiments.SetSearchWorkers(*workers)

	class, ok := map[string]magus.AreaClass{
		"rural": magus.Rural, "suburban": magus.Suburban, "urban": magus.Urban,
	}[*classFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "magusd: unknown class %q\n", *classFlag)
		os.Exit(2)
	}

	log.Printf("building %s market (seed %d)...", class, *seed)
	start := time.Now()
	engine, err := experiments.BuildEngine(*seed, experiments.DefaultAreaSpec(class))
	if err != nil {
		log.Fatalf("build engine: %v", err)
	}
	log.Printf("market ready in %.1fs: %d sites, %d sectors, %.0f users",
		time.Since(start).Seconds(), len(engine.Net.Sites),
		engine.Net.NumSectors(), engine.Model.TotalUE())

	if *pprofAddr != "" {
		// A separate listener keeps the profiler off the public API port.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	api := httpapi.NewServer(engine)
	defer api.Close()
	srv := &http.Server{
		Addr:              *listen,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Joint searches on large markets take tens of seconds; the write
		// timeout must outlast the slowest synchronous plan.
		WriteTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s", *listen)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Print("bye")
}
