package signaling

import (
	"math"
	"strings"
	"testing"

	"magus/internal/migrate"
)

// plan builds a synthetic migration plan from (handovers, seamless)
// pairs.
func plan(steps ...[2]float64) *migrate.Plan {
	p := &migrate.Plan{}
	for _, s := range steps {
		p.Steps = append(p.Steps, migrate.StepRecord{Handovers: s[0], Seamless: s[1]})
	}
	return p
}

func TestEvaluateNilPlan(t *testing.T) {
	if _, err := Evaluate(nil, Config{}); err == nil {
		t.Error("nil plan should fail")
	}
}

func TestSmallBurstNoFailures(t *testing.T) {
	// 100 seamless handovers at 50/s drain in 2 s, inside a 5 s timeout.
	rep, err := Evaluate(plan([2]float64{100, 100}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedTransactions != 0 {
		t.Errorf("failed = %v, want 0", rep.FailedTransactions)
	}
	if math.Abs(rep.MaxDelaySec-2) > 1e-9 {
		t.Errorf("max delay = %v, want 2", rep.MaxDelaySec)
	}
	if rep.PeakQueue != 100 {
		t.Errorf("peak queue = %v, want 100", rep.PeakQueue)
	}
}

func TestLargeSynchronizedBurstFails(t *testing.T) {
	// 1000 simultaneous handovers, 400 of them hard (cost 3): 600 + 1200
	// = 1800 transactions against a 250-transaction timeout budget.
	rep, err := Evaluate(plan([2]float64{1000, 600}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantFailed := 1800.0 - 50*5
	if math.Abs(rep.FailedTransactions-wantFailed) > 1e-9 {
		t.Errorf("failed = %v, want %v", rep.FailedTransactions, wantFailed)
	}
	if rep.FailureFraction() <= 0.5 {
		t.Errorf("failure fraction = %v, want majority", rep.FailureFraction())
	}
}

func TestHardHandoversCostMore(t *testing.T) {
	seamless, err := Evaluate(plan([2]float64{300, 300}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Evaluate(plan([2]float64{300, 0}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hard.TotalTransactions <= seamless.TotalTransactions {
		t.Errorf("hard handovers should cost more: %v vs %v",
			hard.TotalTransactions, seamless.TotalTransactions)
	}
	if hard.MaxDelaySec <= seamless.MaxDelaySec {
		t.Error("hard handover burst should queue longer")
	}
}

func TestQueueDrainsBetweenSteps(t *testing.T) {
	// Two bursts of 100 at 60 s spacing drain fully in between: the
	// second step's peak equals the first's.
	rep, err := Evaluate(plan([2]float64{100, 100}, [2]float64{100, 100}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[1].PeakQueue != rep.Steps[0].PeakQueue {
		t.Errorf("queue should fully drain between spaced steps: %v vs %v",
			rep.Steps[0].PeakQueue, rep.Steps[1].PeakQueue)
	}
	// With 1 s spacing the backlog carries over.
	rep2, err := Evaluate(plan([2]float64{100, 100}, [2]float64{100, 100}),
		Config{StepIntervalSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Steps[1].PeakQueue <= rep2.Steps[0].PeakQueue {
		t.Error("tight spacing should accumulate backlog")
	}
}

func TestGradualBeatsOneShot(t *testing.T) {
	// The gradual plan spreads 1000 seamless handovers over 10 steps;
	// the one-shot plan lands 1000 handovers at once, 700 of them hard.
	var gradualSteps [][2]float64
	for i := 0; i < 10; i++ {
		gradualSteps = append(gradualSteps, [2]float64{100, 100})
	}
	g, o, err := Compare(plan(gradualSteps...), plan([2]float64{1000, 300}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.FailedTransactions > 0 {
		t.Errorf("gradual plan should not drop transactions, dropped %v", g.FailedTransactions)
	}
	if o.FailedTransactions == 0 {
		t.Error("one-shot burst should overwhelm the signaling core")
	}
	if g.MaxDelaySec >= o.MaxDelaySec {
		t.Errorf("gradual max delay %v should beat one-shot %v", g.MaxDelaySec, o.MaxDelaySec)
	}
}

func TestFailureFractionEmpty(t *testing.T) {
	rep := &Report{}
	if rep.FailureFraction() != 0 {
		t.Error("empty report should have zero failure fraction")
	}
}

func TestReportString(t *testing.T) {
	rep, err := Evaluate(plan([2]float64{100, 50}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "signaling:") || !strings.Contains(s, "step  1") {
		t.Errorf("report string: %q", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.applyDefaults()
	if c.RatePerSec != 50 || c.TimeoutSec != 5 || c.StepIntervalSec != 60 || c.HardHandoverCost != 3 {
		t.Errorf("defaults = %+v", c)
	}
}
