// Package testbed simulates the paper's indoor LTE testbed (Section 3):
// a handful of re-programmable small-cell eNodeBs whose transmit power is
// controlled through a software attenuator (L = 30 is maximum attenuation
// / minimum power, L = 1 is minimum attenuation / maximum power, tunable
// in steps of 1), serving USB-dongle UEs over a 10 MHz band-7 carrier,
// with downlink TCP throughput measured iperf-style.
//
// The simulator is a per-TTI (1 ms) discrete-time model: each
// eNodeB-to-UE link has an ITU indoor path loss plus a deterministic
// Jakes-style fading process, each eNodeB runs a proportional-fair
// scheduler over its attached UEs, and a measurement accumulates the
// bits each UE receives over a configurable window, discounted by a TCP
// protocol efficiency factor.
package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"magus/internal/geo"
	"magus/internal/lte"
	"magus/internal/units"
)

// Attenuation bounds of the Cavium small cell's software attenuator.
const (
	MinAttenuation = 1  // maximum transmit power
	MaxAttenuation = 30 // minimum transmit power
)

// MaxTxPowerDbm is the small cell's radio power at L = 1: 125 mW.
var MaxTxPowerDbm = units.MwToDbm(125)

// TCPEfficiency discounts the MAC-layer rate for TCP/IP header and ACK
// overhead in the iperf measurement.
const TCPEfficiency = 0.95

// Config describes the radio environment of the testbed.
type Config struct {
	// Seed drives the deterministic fading processes.
	Seed int64
	// BandwidthHz is the carrier bandwidth (default 10e6, the paper's
	// experimental license).
	BandwidthHz float64
	// DownlinkHz is the downlink center frequency (default 2.635e9,
	// band 7).
	DownlinkHz float64
	// NoiseFigureDB is the UE noise figure (default 9).
	NoiseFigureDB float64
	// FadingStddevDB is the fading amplitude (default 3; negative
	// disables fading for a static channel).
	FadingStddevDB float64
	// PFTimeConstantTTI is the proportional-fair averaging window
	// (default 100).
	PFTimeConstantTTI int
}

func (c *Config) applyDefaults() {
	if c.BandwidthHz <= 0 {
		c.BandwidthHz = 10e6
	}
	if c.DownlinkHz <= 0 {
		c.DownlinkHz = 2.635e9
	}
	if c.NoiseFigureDB <= 0 {
		c.NoiseFigureDB = 9
	}
	switch {
	case c.FadingStddevDB == 0:
		c.FadingStddevDB = 3
	case c.FadingStddevDB < 0:
		c.FadingStddevDB = 0
	}
	if c.PFTimeConstantTTI <= 0 {
		c.PFTimeConstantTTI = 100
	}
}

// ENodeB is one small cell.
type ENodeB struct {
	ID  int
	Pos geo.Point
	// Attenuation is the software attenuator setting L in [1, 30].
	Attenuation int
	// Off marks the eNodeB off-air (taken down for the planned upgrade).
	Off bool
}

// PowerDbm returns the transmit power at the current attenuation.
func (e *ENodeB) PowerDbm() float64 {
	return MaxTxPowerDbm - float64(e.Attenuation-MinAttenuation)
}

// UE is one user terminal.
type UE struct {
	ID  int
	Pos geo.Point
	// Serving is the attached eNodeB index, -1 if unattached.
	Serving int
}

// fader is a deterministic Jakes-style fading process: a sum of
// sinusoids with seeded frequencies and phases.
type fader struct {
	freqs  [8]float64 // Hz
	phases [8]float64
	sigma  float64
}

func newFader(rng *rand.Rand, sigma float64) fader {
	var f fader
	f.sigma = sigma
	for i := range f.freqs {
		f.freqs[i] = 2 + rng.Float64()*18 // 2-20 Hz Doppler components
		f.phases[i] = rng.Float64() * 2 * math.Pi
	}
	return f
}

// gainDB returns the fading gain at time t seconds.
func (f *fader) gainDB(t float64) float64 {
	sum := 0.0
	for i := range f.freqs {
		sum += math.Cos(2*math.Pi*f.freqs[i]*t + f.phases[i])
	}
	return f.sigma * sum / math.Sqrt(float64(len(f.freqs)))
}

// Testbed is the simulated deployment.
type Testbed struct {
	cfg     Config
	enbs    []ENodeB
	ues     []UE
	link    *lte.LinkModel
	noiseMw float64
	faders  [][]fader // [enb][ue]
}

// New builds a testbed with the given eNodeB and UE placements.
func New(cfg Config, enbs []ENodeB, ues []UE) (*Testbed, error) {
	cfg.applyDefaults()
	if len(enbs) == 0 || len(ues) == 0 {
		return nil, fmt.Errorf("testbed: need at least one eNodeB and one UE")
	}
	link, err := lte.NewLinkModel(cfg.BandwidthHz)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	tb := &Testbed{
		cfg:     cfg,
		enbs:    append([]ENodeB(nil), enbs...),
		ues:     append([]UE(nil), ues...),
		link:    link,
		noiseMw: units.DbmToMw(units.ThermalNoiseDbm(cfg.BandwidthHz, cfg.NoiseFigureDB)),
	}
	for i := range tb.enbs {
		if tb.enbs[i].Attenuation < MinAttenuation || tb.enbs[i].Attenuation > MaxAttenuation {
			return nil, fmt.Errorf("testbed: eNodeB %d attenuation %d outside [%d, %d]",
				i, tb.enbs[i].Attenuation, MinAttenuation, MaxAttenuation)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tb.faders = make([][]fader, len(enbs))
	for b := range enbs {
		tb.faders[b] = make([]fader, len(ues))
		for u := range ues {
			tb.faders[b][u] = newFader(rng, cfg.FadingStddevDB)
		}
	}
	tb.Attach()
	return tb, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, enbs []ENodeB, ues []UE) *Testbed {
	tb, err := New(cfg, enbs, ues)
	if err != nil {
		panic(err)
	}
	return tb
}

// NumENodeBs returns the number of eNodeBs.
func (tb *Testbed) NumENodeBs() int { return len(tb.enbs) }

// NumUEs returns the number of UEs.
func (tb *Testbed) NumUEs() int { return len(tb.ues) }

// SetAttenuation tunes eNodeB b's software attenuator.
func (tb *Testbed) SetAttenuation(b, attenuation int) error {
	if b < 0 || b >= len(tb.enbs) {
		return fmt.Errorf("testbed: eNodeB %d out of range", b)
	}
	if attenuation < MinAttenuation || attenuation > MaxAttenuation {
		return fmt.Errorf("testbed: attenuation %d outside [%d, %d]",
			attenuation, MinAttenuation, MaxAttenuation)
	}
	tb.enbs[b].Attenuation = attenuation
	return nil
}

// Attenuation returns eNodeB b's attenuator setting.
func (tb *Testbed) Attenuation(b int) int { return tb.enbs[b].Attenuation }

// SetOff takes eNodeB b off-air (or returns it to service).
func (tb *Testbed) SetOff(b int, off bool) error {
	if b < 0 || b >= len(tb.enbs) {
		return fmt.Errorf("testbed: eNodeB %d out of range", b)
	}
	tb.enbs[b].Off = off
	return nil
}

// Off reports whether eNodeB b is off-air.
func (tb *Testbed) Off(b int) bool { return tb.enbs[b].Off }

// Serving returns the eNodeB UE u is attached to, or -1.
func (tb *Testbed) Serving(u int) int { return tb.ues[u].Serving }

// pathLossDB returns the ITU indoor path loss (negative dB) between
// eNodeB b and UE u: PL = 20 log10(f_MHz) + 30 log10(d_m) - 28.
func (tb *Testbed) pathLossDB(b, u int) float64 {
	d := tb.enbs[b].Pos.DistanceTo(tb.ues[u].Pos)
	if d < 1 {
		d = 1
	}
	fMHz := tb.cfg.DownlinkHz / 1e6
	return -(20*math.Log10(fMHz) + 30*math.Log10(d) - 28)
}

// meanRPdbm is the long-term average received power of UE u from
// eNodeB b (fading averages to zero).
func (tb *Testbed) meanRPdbm(b, u int) float64 {
	return tb.enbs[b].PowerDbm() + tb.pathLossDB(b, u)
}

// Attach re-runs cell selection: every UE attaches to the on-air eNodeB
// with the strongest mean received power. Returns the number of UEs that
// changed serving cell (the handovers this re-configuration triggered).
func (tb *Testbed) Attach() int {
	handovers := 0
	for u := range tb.ues {
		best, bestRP := -1, math.Inf(-1)
		for b := range tb.enbs {
			if tb.enbs[b].Off {
				continue
			}
			if rp := tb.meanRPdbm(b, u); rp > bestRP {
				best, bestRP = b, rp
			}
		}
		if best != tb.ues[u].Serving {
			handovers++
			tb.ues[u].Serving = best
		}
	}
	return handovers
}

// instantSinrDB returns UE u's SINR at time t under current settings.
func (tb *Testbed) instantSinrDB(u int, t float64) float64 {
	serving := tb.ues[u].Serving
	if serving < 0 || tb.enbs[serving].Off {
		return math.Inf(-1)
	}
	signal := units.DbmToMw(tb.meanRPdbm(serving, u) + tb.faders[serving][u].gainDB(t))
	interf := 0.0
	for b := range tb.enbs {
		if b == serving || tb.enbs[b].Off {
			continue
		}
		interf += units.DbmToMw(tb.meanRPdbm(b, u) + tb.faders[b][u].gainDB(t))
	}
	return units.LinearToDb(signal / (tb.noiseMw + interf))
}

// Measurement is the outcome of one iperf-style downlink run.
type Measurement struct {
	// ThroughputBps is the measured TCP goodput per UE.
	ThroughputBps []float64
	// TTIs is the number of 1 ms slots simulated.
	TTIs int
}

// Measure runs simultaneous saturating downlink TCP sessions to every
// attached UE for the given duration (the paper uses 30 s sessions) and
// returns per-UE goodput. Unattached UEs measure zero.
func (tb *Testbed) Measure(durationSec float64) Measurement {
	ttis := int(durationSec * 1000)
	if ttis < 1 {
		ttis = 1
	}
	bits := make([]float64, len(tb.ues))
	// Proportional-fair state per UE.
	avg := make([]float64, len(tb.ues))
	for i := range avg {
		avg[i] = 1 // avoid division by zero; units are bits/TTI
	}
	beta := 1.0 / float64(tb.cfg.PFTimeConstantTTI)

	// Group UEs by serving eNodeB once; attachment is fixed during a
	// measurement.
	attached := make([][]int, len(tb.enbs))
	for u := range tb.ues {
		if s := tb.ues[u].Serving; s >= 0 && !tb.enbs[s].Off {
			attached[s] = append(attached[s], u)
		}
	}

	for tti := 0; tti < ttis; tti++ {
		t := float64(tti) / 1000
		for b := range tb.enbs {
			if tb.enbs[b].Off || len(attached[b]) == 0 {
				continue
			}
			// Pick the PF winner: max instantaneous rate / average rate.
			bestUE, bestMetric, bestRate := -1, -1.0, 0.0
			for _, u := range attached[b] {
				rate := tb.link.MaxRateBps(tb.instantSinrDB(u, t)) / 1000 // bits per TTI
				if rate <= 0 {
					continue
				}
				if metric := rate / avg[u]; metric > bestMetric {
					bestUE, bestMetric, bestRate = u, metric, rate
				}
			}
			// Update PF averages for every attached UE.
			for _, u := range attached[b] {
				served := 0.0
				if u == bestUE {
					served = bestRate
				}
				avg[u] = (1-beta)*avg[u] + beta*served
			}
			if bestUE >= 0 {
				bits[bestUE] += bestRate
			}
		}
	}

	out := Measurement{ThroughputBps: make([]float64, len(tb.ues)), TTIs: ttis}
	for u := range tb.ues {
		out.ThroughputBps[u] = bits[u] / durationSec * TCPEfficiency
	}
	return out
}

// Utility computes the paper's testbed utility f(C) = Σ log10(r_Mbps)
// over the measured UE rates, with unserved UEs contributing zero. This
// is the metric behind Figure 2's utility axis (3.31, 3.09, 2.68 in
// Scenario 1).
func Utility(m Measurement) float64 {
	total := 0.0
	for _, r := range m.ThroughputBps {
		if mbps := r / 1e6; mbps > 0 {
			v := math.Log10(mbps)
			if v < 0 {
				v = 0 // floor: a served UE never scores below an unserved one
			}
			total += v
		}
	}
	return total
}
