package modelcache

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"magus/internal/geo"
	"magus/internal/netmodel"
	"magus/internal/propagation"
	"magus/internal/terrain"
	"magus/internal/topology"
)

// testInputs returns a small suburban build input set.
func testInputs(t testing.TB, seed int64) (*topology.Network, *propagation.SPM, geo.Rect, netmodel.Params) {
	t.Helper()
	net := topology.MustGenerate(topology.GenConfig{
		Seed:   seed,
		Class:  topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 5000, 5000),
	})
	spm := propagation.MustNewSPM(2.635e9, nil)
	return net, spm, net.Bounds, netmodel.Params{CellSizeM: 250}
}

// mustEqualModels fails unless the two models' contributor arrays are
// bit-identical.
func mustEqualModels(t *testing.T, want, got *netmodel.Model) {
	t.Helper()
	ws, wb, we, wg := want.Contributors()
	gs, gb, ge, gg := got.Contributors()
	if len(ws) != len(gs) || len(wg) != len(gg) {
		t.Fatalf("shape mismatch: %d/%d entries, %d/%d gridStart", len(ws), len(gs), len(wg), len(gg))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("sector[%d] = %d, want %d", i, gs[i], ws[i])
		}
		if math.Float32bits(wb[i]) != math.Float32bits(gb[i]) {
			t.Fatalf("baseDB[%d] = %v, want %v", i, gb[i], wb[i])
		}
		if math.Float32bits(we[i]) != math.Float32bits(ge[i]) {
			t.Fatalf("elev[%d] = %v, want %v", i, ge[i], we[i])
		}
	}
	for i := range wg {
		if wg[i] != gg[i] {
			t.Fatalf("gridStart[%d] = %d, want %d", i, gg[i], wg[i])
		}
	}
}

func TestLoadOrBuildRoundtrip(t *testing.T) {
	net, spm, region, params := testInputs(t, 11)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	m1, err := c.LoadOrBuild(net, spm, region, params)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Builds != 1 || st.Stores != 1 || st.Hits != 0 {
		t.Fatalf("after cold build: %+v", st)
	}

	m2, err := c.LoadOrBuild(net, spm, region, params)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.CoreHits != 1 || st.Builds != 1 {
		t.Fatalf("after warm in-process load: %+v", st)
	}
	if m1 == m2 {
		t.Fatal("LoadOrBuild must return independent models")
	}
	if m1.Core() != m2.Core() {
		t.Fatal("models for one key must share one core")
	}
	mustEqualModels(t, m1, m2)

	// A fresh process (no resident core) loads from the snapshot file.
	c.dropSharedCores()
	m3, err := c.LoadOrBuild(net, spm, region, params)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Builds != 1 {
		t.Fatalf("after warm disk load: %+v", st)
	}
	if m3.Core() == m1.Core() {
		t.Fatal("snapshot load after a core drop must materialize a new core")
	}
	mustEqualModels(t, m1, m3)

	// A loaded model must behave identically, not just store the same
	// arrays: evaluate a baseline state on both.
	if m1.NumContributors() != m2.NumContributors() {
		t.Fatalf("contributors: %d vs %d", m1.NumContributors(), m2.NumContributors())
	}
}

func TestKeySensitivity(t *testing.T) {
	net, spm, region, params := testInputs(t, 11)
	base := Key(net, spm, region, params)

	p2 := params
	p2.CellSizeM = 200
	if Key(net, spm, region, p2) == base {
		t.Error("cell size change must change the key")
	}
	p3 := params
	p3.BuildWorkers = 7
	if Key(net, spm, region, p3) != base {
		t.Error("BuildWorkers must not affect the key")
	}
	net2, _, _, _ := testInputs(t, 12)
	if Key(net2, spm, region, params) == base {
		t.Error("topology change must change the key")
	}
	spm2 := propagation.MustNewSPM(2.635e9, nil)
	spm2.ClutterWeight = 0.5
	if Key(net, spm2, region, params) == base {
		t.Error("SPM constant change must change the key")
	}

	terr := terrain.MustGenerate(terrain.Config{Seed: 5, Bounds: region, Resolution: 500})
	spmT := propagation.MustNewSPM(2.635e9, terr)
	withTerrain := Key(net, spmT, region, params)
	if withTerrain == base {
		t.Error("terrain presence must change the key")
	}
	terr2 := terrain.MustGenerate(terrain.Config{Seed: 6, Bounds: region, Resolution: 500})
	spmT2 := propagation.MustNewSPM(2.635e9, terr2)
	if Key(net, spmT2, region, params) == withTerrain {
		t.Error("terrain content must change the key")
	}
}

// TestLoadOrBuildSingleFlight hammers one key from many goroutines and
// asserts exactly one build ran: the leader builds and stores, the
// followers load the fresh snapshot. Run under -race this also
// exercises the claim that SPM queries are safe for concurrent readers.
func TestLoadOrBuildSingleFlight(t *testing.T) {
	net, spm, region, params := testInputs(t, 21)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	models := make([]*netmodel.Model, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			m, err := c.LoadOrBuild(net, spm, region, params)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	close(start)
	wg.Wait()

	st := c.Stats()
	if st.Builds != 1 {
		t.Fatalf("got %d builds, want exactly 1 (stats %+v)", st.Builds, st)
	}
	if st.Hits+st.CoreHits < callers-1 {
		t.Fatalf("got %d disk + %d core hits, want >= %d (stats %+v)",
			st.Hits, st.CoreHits, callers-1, st)
	}
	for i := 1; i < callers; i++ {
		if models[i] == nil {
			t.Fatalf("caller %d got no model", i)
		}
		if models[i] == models[0] {
			t.Fatalf("callers 0 and %d share a model", i)
		}
		if models[i].Core() != models[0].Core() {
			t.Fatalf("callers 0 and %d hold different cores for one key", i)
		}
		mustEqualModels(t, models[0], models[i])
	}
}

// TestCorruptSnapshotFallback flips bytes at several offsets and
// truncates the file; every damaged variant must be rejected and
// silently rebuilt into a fresh valid snapshot.
func TestCorruptSnapshotFallback(t *testing.T) {
	net, spm, region, params := testInputs(t, 31)
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.LoadOrBuild(net, spm, region, params)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Key(net, spm, region, params)+".snap")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func([]byte) []byte{
		"flip-magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flip-version": func(b []byte) []byte { b[9] ^= 0xff; return b },
		"flip-key":     func(b []byte) []byte { b[20] ^= 0xff; return b },
		"flip-payload": func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },
		"flip-crc":     func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"truncate":     func(b []byte) []byte { return b[:len(b)/3] },
		"empty":        func(b []byte) []byte { return b[:0] },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			// Drop the resident shared core: a live in-memory core would
			// (correctly) serve the request without touching the damaged
			// file; this test is about the fresh-process path.
			c.dropSharedCores()
			before := c.Stats()
			damaged := corrupt(append([]byte(nil), pristine...))
			if err := os.WriteFile(path, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := c.LoadOrBuild(net, spm, region, params)
			if err != nil {
				t.Fatalf("corrupt snapshot must rebuild, got error: %v", err)
			}
			mustEqualModels(t, want, got)
			after := c.Stats()
			if after.Errors <= before.Errors {
				t.Error("corruption was not counted")
			}
			if after.Builds <= before.Builds {
				t.Error("corruption must force a rebuild")
			}
			// The rebuild re-stored a valid snapshot.
			if restored, err := os.ReadFile(path); err != nil || len(restored) != len(pristine) {
				t.Fatalf("snapshot not restored: len=%d err=%v", len(restored), err)
			}
		})
	}
}

func TestNilCacheBuildsDirectly(t *testing.T) {
	net, spm, region, params := testInputs(t, 41)
	var c *Cache
	m, err := c.LoadOrBuild(net, spm, region, params)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.NumContributors() == 0 {
		t.Fatal("nil cache must still build a usable model")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats must be zero, got %+v", st)
	}
	if c.Dir() != "" {
		t.Error("nil cache dir must be empty")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir must fail")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Error("dir under a regular file must fail")
	}
}
