package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.DistanceTo(q); got != 5 {
		t.Errorf("DistanceTo = %v, want 5", got)
	}
	if got := q.DistanceTo(p); got != 5 {
		t.Errorf("DistanceTo reversed = %v, want 5", got)
	}
}

func TestBearing(t *testing.T) {
	p := Point{0, 0}
	cases := []struct {
		q    Point
		want float64
	}{
		{Point{0, 10}, 0},    // north
		{Point{10, 0}, 90},   // east
		{Point{0, -10}, 180}, // south
		{Point{-10, 0}, 270}, // west
		{Point{10, 10}, 45},  // north-east
	}
	for _, c := range cases {
		if got := p.BearingTo(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BearingTo(%+v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRectCentered(t *testing.T) {
	r := NewRectCentered(Point{100, 200}, 50, 30)
	if r.Width() != 50 || r.Height() != 30 {
		t.Errorf("dimensions = %v x %v, want 50 x 30", r.Width(), r.Height())
	}
	c := r.Center()
	if c.X != 100 || c.Y != 200 {
		t.Errorf("center = %+v, want (100, 200)", c)
	}
	if !r.Contains(Point{100, 200}) {
		t.Error("rect should contain its center")
	}
	if r.Contains(Point{125, 200}) {
		t.Error("max boundary should be exclusive")
	}
	if !r.Contains(Point{75, 185}) {
		t.Error("min boundary should be inclusive")
	}
}

func TestRectExpandIntersects(t *testing.T) {
	a := NewRectCentered(Point{0, 0}, 10, 10)
	b := NewRectCentered(Point{20, 0}, 10, 10)
	if a.Intersects(b) {
		t.Error("disjoint rects should not intersect")
	}
	if !a.Expand(11).Intersects(b) {
		t.Error("expanded rect should intersect")
	}
}

func TestNewGridErrors(t *testing.T) {
	r := NewRectCentered(Point{0, 0}, 100, 100)
	if _, err := NewGrid(r, 0); err == nil {
		t.Error("NewGrid with zero cell size should fail")
	}
	if _, err := NewGrid(r, -5); err == nil {
		t.Error("NewGrid with negative cell size should fail")
	}
	if _, err := NewGrid(Rect{Point{0, 0}, Point{0, 0}}, 10); err == nil {
		t.Error("NewGrid with empty bounds should fail")
	}
}

func TestGridDimensions(t *testing.T) {
	g := MustNewGrid(NewRectCentered(Point{0, 0}, 1000, 500), 100)
	if g.Cols != 10 || g.Rows != 5 {
		t.Fatalf("grid = %dx%d, want 10x5", g.Cols, g.Rows)
	}
	if g.NumCells() != 50 {
		t.Errorf("NumCells = %d, want 50", g.NumCells())
	}
}

func TestGridSnapOutward(t *testing.T) {
	// A 950 m span with 100 m cells needs 10 columns.
	g := MustNewGrid(Rect{Point{0, 0}, Point{950, 100}}, 100)
	if g.Cols != 10 {
		t.Errorf("Cols = %d, want 10 (snapped outward)", g.Cols)
	}
	if g.Bounds.Max.X != 1000 {
		t.Errorf("Bounds.Max.X = %v, want 1000", g.Bounds.Max.X)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := MustNewGrid(NewRectCentered(Point{0, 0}, 1000, 800), 100)
	for row := 0; row < g.Rows; row++ {
		for col := 0; col < g.Cols; col++ {
			idx := g.Index(col, row)
			c2, r2 := g.ColRow(idx)
			if c2 != col || r2 != row {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", col, row, idx, c2, r2)
			}
		}
	}
}

func TestCellCenterAndLookup(t *testing.T) {
	g := MustNewGrid(Rect{Point{0, 0}, Point{1000, 1000}}, 100)
	center := g.CellCenter(0, 0)
	if center.X != 50 || center.Y != 50 {
		t.Errorf("CellCenter(0,0) = %+v, want (50, 50)", center)
	}
	col, row, ok := g.CellAt(Point{250, 730})
	if !ok || col != 2 || row != 7 {
		t.Errorf("CellAt(250,730) = (%d,%d,%v), want (2,7,true)", col, row, ok)
	}
	if idx := g.IndexAt(Point{-1, 50}); idx != -1 {
		t.Errorf("IndexAt outside = %d, want -1", idx)
	}
}

func TestCellAtCenterRoundTripProperty(t *testing.T) {
	g := MustNewGrid(Rect{Point{0, 0}, Point{5000, 5000}}, 100)
	f := func(ci, ri uint16) bool {
		col := int(ci) % g.Cols
		row := int(ri) % g.Rows
		p := g.CellCenter(col, row)
		c2, r2, ok := g.CellAt(p)
		return ok && c2 == col && r2 == row
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellsWithin(t *testing.T) {
	g := MustNewGrid(Rect{Point{0, 0}, Point{1000, 1000}}, 100)
	// Radius that covers only the containing cell's center.
	cells := g.CellsWithin(nil, Point{450, 450}, 10)
	if len(cells) != 1 {
		t.Fatalf("CellsWithin r=10 returned %d cells, want 1", len(cells))
	}
	if cells[0] != g.Index(4, 4) {
		t.Errorf("cell = %d, want %d", cells[0], g.Index(4, 4))
	}
	// Radius covering the whole grid.
	all := g.CellsWithin(nil, Point{500, 500}, 10000)
	if len(all) != g.NumCells() {
		t.Errorf("CellsWithin huge radius returned %d, want %d", len(all), g.NumCells())
	}
	// Negative radius yields nothing.
	if got := g.CellsWithin(nil, Point{500, 500}, -1); len(got) != 0 {
		t.Errorf("CellsWithin negative radius returned %d cells", len(got))
	}
}

func TestCellsWithinMatchesBruteForce(t *testing.T) {
	g := MustNewGrid(Rect{Point{0, 0}, Point{2000, 2000}}, 100)
	p := Point{700, 1100}
	radius := 450.0
	fast := g.CellsWithin(nil, p, radius)
	want := map[int]bool{}
	for idx := 0; idx < g.NumCells(); idx++ {
		if g.CellCenterIdx(idx).DistanceTo(p) <= radius {
			want[idx] = true
		}
	}
	if len(fast) != len(want) {
		t.Fatalf("CellsWithin = %d cells, brute force = %d", len(fast), len(want))
	}
	for _, idx := range fast {
		if !want[idx] {
			t.Errorf("cell %d returned but not within radius", idx)
		}
	}
}

func TestAngularDifference(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, 90, 90},
		{350, 10, 20},
		{10, 350, 20},
		{0, 180, 180},
		{0, 270, 90},
		{-90, 90, 180},
	}
	for _, c := range cases {
		if got := AngularDifference(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngularDifference(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngularDifferenceProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		d := AngularDifference(a, b)
		return d >= 0 && d <= 180 && math.Abs(d-AngularDifference(b, a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeBearing(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {370, 10}, {-10, 350}, {720, 0}, {-350, 10},
	}
	for _, c := range cases {
		if got := NormalizeBearing(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalizeBearing(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
