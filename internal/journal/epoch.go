package journal

// Epoch fencing. A journal's epoch is a monotonically increasing token
// stored in a small sidecar file beside the log (Path() + ".epoch").
// Whoever intends to act on the journal's contents — resubmit its
// pending jobs, commit terminal results — first claims the epoch
// (ClaimEpoch), and verifies the claim is still current (VerifyEpoch)
// before every commit. A process that claimed earlier and was since
// superseded (its box hung, a replacement took over the journal, a
// fleet coordinator re-placed its leases) observes ErrStaleEpoch and
// must stop committing: this is the classic fencing-token discipline
// that keeps a "dead" worker that comes back from double-committing
// work that has already been handed to someone else.
//
// ClaimEpoch is designed for sequential handoff (crash → restart,
// drain → replacement), not as a distributed lock: two processes
// claiming at the same instant race on the read-increment-rename, and
// the loser is only discovered at its next VerifyEpoch. That is exactly
// the guarantee fencing needs — losers cannot commit — but it is not
// mutual exclusion, and both may burn CPU until they verify.

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// randUint64 draws claimant-nonce entropy, degrading to the clock if
// the system source fails (the nonce only disambiguates racers).
func randUint64() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// ErrStaleEpoch reports that the caller's fencing token has been
// superseded: another process claimed a later epoch over the same
// journal, and the caller must not commit further work.
var ErrStaleEpoch = errors.New("journal: stale epoch")

// epochFile is the sidecar's JSON shape. The nonce identifies the
// claimant so a racing writer can detect that its rename lost.
type epochFile struct {
	Epoch int64  `json:"epoch"`
	Nonce string `json:"nonce"`
}

// epochPath returns the sidecar path for a journal at path.
func epochPath(path string) string { return path + ".epoch" }

// readEpochFile loads the sidecar (zero value when missing or
// unreadable: a journal that has never been claimed is at epoch 0).
func readEpochFile(path string) epochFile {
	raw, err := os.ReadFile(epochPath(path))
	if err != nil {
		return epochFile{}
	}
	var ef epochFile
	if json.Unmarshal(raw, &ef) != nil {
		return epochFile{}
	}
	return ef
}

// CurrentEpoch reports the journal's current fencing epoch: the highest
// token any process has claimed over the log at path (0 when none has).
func CurrentEpoch(path string) int64 {
	return readEpochFile(path).Epoch
}

// writeEpochFile atomically replaces the sidecar (unique temp + rename,
// fsynced) so a crash mid-claim leaves either the old or the new token,
// never a torn one.
func writeEpochFile(path string, ef epochFile) error {
	raw, err := json.Marshal(ef)
	if err != nil {
		return fmt.Errorf("journal: epoch encode: %w", err)
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%s", epochPath(path), os.Getpid(), ef.Nonce)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: epoch: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: epoch: %w", err)
	}
	if err := os.Rename(tmp, epochPath(path)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: epoch: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// epochLockStale is how old an orphaned claim lock may grow before a
// new claimant steals it: a claim holds the lock for microseconds, so
// anything older is the debris of a crash mid-claim.
const epochLockStale = 5 * time.Second

// acquireEpochLock serializes epoch claims over one journal path with
// an O_EXCL lock file, so concurrent claimants receive distinct,
// strictly increasing tokens. A lock left behind by a crashed claimant
// is stolen once it looks stale.
func acquireEpochLock(path string) (release func(), err error) {
	lock := epochPath(path) + ".lock"
	deadline := time.Now().Add(10 * time.Second)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(lock) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("journal: epoch lock: %w", err)
		}
		if info, serr := os.Stat(lock); serr == nil && time.Since(info.ModTime()) > epochLockStale {
			os.Remove(lock) // crashed claimant; at worst a racer re-removes a fresh lock once
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("journal: epoch lock: timed out waiting on %s", lock)
		}
		time.Sleep(time.Millisecond)
	}
}

// ClaimEpoch claims the next fencing epoch over this journal and
// returns the token. The claim is durable (sidecar fsynced) and
// recorded in the log itself as a TypeEpoch record, so the takeover is
// visible on replay. Concurrent claimants serialize on a lock file and
// receive distinct tokens; every claimant but the last is fenced, which
// it discovers at its next VerifyEpoch.
func (j *Journal) ClaimEpoch() (int64, error) {
	release, err := acquireEpochLock(j.path)
	if err != nil {
		return 0, err
	}
	next := epochFile{
		Epoch: readEpochFile(j.path).Epoch + 1,
		Nonce: fmt.Sprintf("%d-%d", os.Getpid(), randUint64()),
	}
	err = writeEpochFile(j.path, next)
	release()
	if err != nil {
		return 0, err
	}
	if err := j.Append(Record{Type: TypeEpoch, Epoch: next.Epoch}); err != nil {
		return 0, err
	}
	return next.Epoch, j.Sync()
}

// VerifyEpoch checks that epoch is still the journal's current fencing
// token, returning ErrStaleEpoch (wrapped with both tokens) when a
// later claim has superseded it. Reads the sidecar from disk on every
// call: the whole point is observing another process's takeover.
func (j *Journal) VerifyEpoch(epoch int64) error {
	cur := CurrentEpoch(j.path)
	if cur > epoch {
		return fmt.Errorf("%w: held %d, current %d", ErrStaleEpoch, epoch, cur)
	}
	return nil
}
