package campaign

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"magus/internal/core"
	"magus/internal/modelcache"
	"magus/internal/netmodel"
	"magus/internal/topology"
)

// EngineKey identifies one built market: the class and seed that drive
// the synthetic substrate plus a hash of every other knob of the spec
// (region span, cell size, equalization budget, ...). Two keys are equal
// exactly when the builds they describe are interchangeable.
type EngineKey struct {
	Class    topology.AreaClass
	Seed     int64
	SpecHash uint64
}

// SpecHash folds the printed form of its arguments into an FNV-1a hash,
// the canonical way to derive EngineKey.SpecHash from a spec struct.
// %#v includes field names, so structs with equal values but different
// types hash apart.
func SpecHash(parts ...any) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v;", p)
	}
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of an EngineCache's counters.
// Hits counts lookups that found an entry (including callers that joined
// an in-flight build); Builds counts constructions actually executed, so
// Builds ≤ Misses always and Builds < Misses when single-flight merging
// saved work.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Builds    int64 `json:"builds"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	// Snapshot reports the attached on-disk model snapshot cache (see
	// AttachSnapshots); nil when engines build their models directly.
	Snapshot *modelcache.Stats `json:"snapshot,omitempty"`
	// SharedCores reports the immutable model substrate behind the cached
	// engines; nil when no cached engine carries a model.
	SharedCores *SharedCoreStats `json:"shared_cores,omitempty"`
}

// SharedCoreStats aggregates the distinct netmodel.ModelCores referenced
// by the cached engines. Cores counts distinct substrates, Refs the
// Models attached across all of them (a GC-lazy upper bound — see
// ModelCore.Refs), Bytes the resident substrate size paid once per core
// no matter how many engines, workers or forks share it.
type SharedCoreStats struct {
	Cores int   `json:"cores"`
	Refs  int64 `json:"refs"`
	Bytes int64 `json:"bytes"`
}

// EngineCache is a bounded LRU of built engines with single-flight
// construction: concurrent callers asking for the same key share one
// build, and the least recently used entries are evicted once the cache
// exceeds its capacity. An Engine is immutable after construction (every
// mitigation works on clones of its baseline state), so a cached engine
// is safe to hand to any number of concurrent jobs.
type EngineCache struct {
	mu      sync.Mutex
	cap     int
	entries map[EngineKey]*cacheEntry
	order   *list.List // front = most recently used; values are *cacheEntry
	stats   CacheStats

	// snapshots is the model snapshot cache the engines built through
	// this cache draw from, attached so Stats can report both layers
	// together (an engine-cache miss that hits a snapshot still skips the
	// expensive model build).
	snapshots atomic.Pointer[modelcache.Cache]
}

type cacheEntry struct {
	key    EngineKey
	elem   *list.Element
	ready  chan struct{} // closed when engine/err are set
	engine *core.Engine
	err    error
}

// DefaultCacheCapacity holds every market the full experiment sweep
// touches (3 classes x a handful of seeds) with room to spare; engines
// dominate the process's memory, so the bound is deliberately modest.
const DefaultCacheCapacity = 32

// NewEngineCache returns a cache bounded to capacity entries
// (DefaultCacheCapacity when capacity <= 0).
func NewEngineCache(capacity int) *EngineCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &EngineCache{
		cap:     capacity,
		entries: make(map[EngineKey]*cacheEntry),
		order:   list.New(),
	}
}

// GetOrBuild returns the engine for key, running build at most once per
// key across concurrent callers. Failed builds are not cached: the entry
// is dropped so a later call retries, and every caller that joined the
// failed flight observes the same error.
func (c *EngineCache) GetOrBuild(key EngineKey, build func() (*core.Engine, error)) (*core.Engine, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.engine, e.err
	}
	c.stats.Misses++
	c.stats.Builds++
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	e.engine, e.err = build()
	if e.err != nil {
		// Drop the failed entry (if eviction has not already) so the next
		// request retries instead of serving a stale error forever.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.order.Remove(e.elem)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.engine, e.err
}

// evictLocked trims completed entries beyond capacity, oldest first.
// In-flight builds are skipped: their waiters hold the entry pointer and
// evicting them would spawn duplicate builds.
func (c *EngineCache) evictLocked() {
	for elem := c.order.Back(); c.order.Len() > c.cap && elem != nil; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.ready:
			delete(c.entries, e.key)
			c.order.Remove(elem)
			c.stats.Evictions++
		default: // still building
		}
		elem = prev
	}
}

// AttachSnapshots associates the model snapshot cache used by this
// cache's engine builds, so Stats reports both caching layers. A nil
// argument detaches.
func (c *EngineCache) AttachSnapshots(mc *modelcache.Cache) {
	c.snapshots.Store(mc)
}

// Snapshots returns the attached model snapshot cache (nil when none).
func (c *EngineCache) Snapshots() *modelcache.Cache {
	return c.snapshots.Load()
}

// Stats snapshots the cache counters.
func (c *EngineCache) Stats() CacheStats {
	c.mu.Lock()
	s := c.stats
	s.Size = c.order.Len()
	s.Capacity = c.cap
	var cores SharedCoreStats
	seen := make(map[*netmodel.ModelCore]bool)
	for elem := c.order.Front(); elem != nil; elem = elem.Next() {
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.ready:
		default:
			continue // still building
		}
		if e.engine == nil || e.engine.Model == nil {
			continue
		}
		mc := e.engine.Model.Core()
		if mc == nil || seen[mc] {
			continue
		}
		seen[mc] = true
		cores.Cores++
		cores.Refs += mc.Refs()
		cores.Bytes += mc.Bytes()
	}
	if cores.Cores > 0 {
		s.SharedCores = &cores
	}
	c.mu.Unlock()
	if mc := c.snapshots.Load(); mc != nil {
		snap := mc.Stats()
		s.Snapshot = &snap
	}
	return s
}
