// Package journal is an append-only JSONL write-ahead log for campaign
// job lifecycle events. The orchestrator appends a record when a job is
// submitted, each time an attempt starts, and when the job reaches a
// terminal state; after a crash or a drain deadline, replaying the file
// identifies every job that was accepted but never finished, so a
// restarted magusd re-enqueues exactly the lost work (see
// campaign.ReplayJournal).
//
// Durability is batched: Append buffers records and the file is fsynced
// once per SyncEvery records or SyncInterval, whichever comes first, so
// a submit burst pays one disk flush rather than one per job. Sync
// forces the batch out — callers flush explicitly at admission points
// (an accepted campaign must survive a crash the moment the client sees
// 202).
//
// The log is compacted by atomically rewriting it with only the records
// that still matter (the pending jobs): Compact writes a fresh file
// beside the log, fsyncs it, and renames it into place, so a crash
// during compaction leaves either the old or the new log, never a torn
// mixture.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Record types, in lifecycle order.
const (
	// TypeSubmitted records one accepted job and carries its spec.
	TypeSubmitted = "submitted"
	// TypeAttempt records the start of one execution attempt.
	TypeAttempt = "attempt"
	// TypeResult records a job's terminal state (done/failed/cancelled).
	TypeResult = "result"
	// TypeRequeue marks a job deliberately abandoned by a draining
	// process; like the absence of a result, it means "re-enqueue on
	// restart", but makes the drain visible in the log.
	TypeRequeue = "requeue"
	// TypeEpoch records a fencing-epoch claim (see Journal.ClaimEpoch):
	// the process appending it took ownership of the journal's pending
	// work away from every earlier claimant.
	TypeEpoch = "epoch"
	// TypeLease records a fleet coordinator granting (or re-granting) a
	// market's job lease to a worker node; Epoch is the lease's fencing
	// token, bumped on every re-placement so results from a superseded
	// lease are rejected.
	TypeLease = "lease"
)

// Executor record types (see internal/executor): per-step checkpoints
// of a guarded runbook run, in protocol order. Campaign carries the run
// ID, Job the step's 1-based index. The intent/commit pair brackets the
// push so recovery can resolve the in-doubt window (intent without
// commit → ask the network whether the push landed) and never
// double-push.
const (
	// TypeExecStep declares intent to push a step (Spec = its changes).
	TypeExecStep = "exec-step"
	// TypeExecCommit records the push acknowledged: the changes are live.
	TypeExecCommit = "exec-commit"
	// TypeExecVerify records the KPI watchdog clearing the step.
	TypeExecVerify = "exec-verified"
	// TypeExecHalt records the run halting (State = reason, Job = step).
	TypeExecHalt = "exec-halted"
	// TypeExecRollbackStep declares intent to roll back a committed step.
	TypeExecRollbackStep = "exec-rollback-step"
	// TypeExecRollbackCommit records that step's rollback push landing.
	TypeExecRollbackCommit = "exec-rollback-commit"
	// TypeExecRolledBack records the whole rollback sequence completing.
	TypeExecRolledBack = "exec-rolled-back"
	// TypeExecDone records a run completing cleanly (all steps verified).
	TypeExecDone = "exec-done"
)

// Record is one JSONL line of the log.
type Record struct {
	// Seq is the monotonically increasing record number, assigned by
	// Append.
	Seq int64 `json:"seq"`
	// Time is the wall-clock append time.
	Time time.Time `json:"time"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Campaign and Job identify the job the record is about.
	Campaign string `json:"campaign,omitempty"`
	Job      int    `json:"job"`
	// Attempt is the 1-based attempt number (attempt records).
	Attempt int `json:"attempt,omitempty"`
	// State and Error describe the terminal outcome (result records).
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Epoch is the fencing token under which the record was written
	// (epoch and lease records; job records of a fenced orchestrator).
	Epoch int64 `json:"epoch,omitempty"`
	// Market and Node identify a fleet lease's market and owning worker
	// (lease records).
	Market string `json:"market,omitempty"`
	Node   string `json:"node,omitempty"`
	// Spec is the job's serialized spec (submitted records), opaque to
	// this package so it carries no dependency on the campaign types.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Options tune a journal's durability batching. The zero value selects
// defaults.
type Options struct {
	// SyncEvery fsyncs after this many unsynced appends (default 64).
	SyncEvery int
	// SyncInterval bounds how long an appended record may sit unsynced
	// (default 100ms).
	SyncInterval time.Duration
}

func (o *Options) applyDefaults() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
}

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	opts Options
	path string

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seq      int64
	unsynced int
	records  int64 // total records in the file (replayed + appended)
	timer    *time.Timer
	closed   bool

	// appendErrs counts failed writes/flushes/fsyncs over the journal's
	// lifetime. A failed append is also returned to the caller, but the
	// background sync timer has no caller — the counter is how a dying
	// disk becomes visible on /healthz.
	appendErrs atomic.Int64
}

// AppendErrors returns how many append/flush/fsync operations have
// failed since the journal was opened.
func (j *Journal) AppendErrors() int64 { return j.appendErrs.Load() }

// Open opens (creating if needed) the journal at path for appending.
// The returned journal's sequence numbers continue after the highest
// already in the file. A torn final line left by a crash mid-append is
// truncated away — the record it belonged to was never acknowledged —
// so new appends always start on a clean line boundary.
func Open(path string, opts Options) (*Journal, error) {
	opts.applyDefaults()
	lastSeq, count, valid, err := scan(path, nil)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if info, err := f.Stat(); err == nil && info.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	return &Journal{
		opts:    opts,
		path:    path,
		f:       f,
		w:       bufio.NewWriter(f),
		seq:     lastSeq,
		records: count,
	}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	return j.path
}

// Append writes one record (assigning Seq and Time) and schedules a
// batched fsync per the journal's options.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	j.seq++
	rec.Seq = j.seq
	rec.Time = time.Now().UTC()
	if err := j.writeLocked(rec); err != nil {
		return err
	}
	j.records++
	j.unsynced++
	if j.unsynced >= j.opts.SyncEvery {
		return j.syncLocked()
	}
	if j.timer == nil {
		j.timer = time.AfterFunc(j.opts.SyncInterval, func() {
			j.mu.Lock()
			defer j.mu.Unlock()
			if !j.closed {
				_ = j.syncLocked()
			}
		})
	}
	return nil
}

func (j *Journal) writeLocked(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if _, err := j.w.Write(line); err != nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// syncLocked flushes the buffer and fsyncs the file.
func (j *Journal) syncLocked() error {
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	if j.unsynced == 0 {
		return nil
	}
	j.unsynced = 0
	if err := j.w.Flush(); err != nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Sync forces every appended record to stable storage before returning.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	return j.syncLocked()
}

// Records returns the number of records currently in the file (including
// those present when it was opened). Callers use it to decide when a
// compaction is worthwhile.
func (j *Journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Compact atomically replaces the log's contents with live (typically
// the submitted records of still-pending jobs): the records are written
// to a temporary file, fsynced, and renamed over the log. Sequence
// numbering continues from the pre-compaction counter so replay order
// stays unambiguous.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	// Flush anything buffered so a failed compaction leaves a complete
	// old log behind.
	if err := j.syncLocked(); err != nil {
		return err
	}

	tmp := j.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	count := int64(0)
	for _, rec := range live {
		j.seq++
		rec.Seq = j.seq
		if rec.Time.IsZero() {
			rec.Time = time.Now().UTC()
		}
		line, err := json.Marshal(rec)
		if err == nil {
			_, err = w.Write(line)
		}
		if err == nil {
			err = w.WriteByte('\n')
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: compact: %w", err)
		}
		count++
	}
	if err := w.Flush(); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Re-open the (new) file for appending; also fsync the directory so
	// the rename itself is durable.
	j.w.Reset(io.Discard)
	j.f.Close()
	f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.closed = true
		return fmt.Errorf("journal: compact: reopen: %w", err)
	}
	j.f = f
	j.w.Reset(f)
	j.records = count
	syncDir(filepath.Dir(j.path))
	return nil
}

// Close flushes, fsyncs and closes the log. The journal accepts no
// appends afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir best-effort fsyncs a directory (rename durability).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// Replay streams every record of the log at path through fn in file
// order. A torn final line — the signature of a crash mid-append — is
// tolerated and ignored; corruption anywhere else is an error. A
// missing file replays zero records.
func Replay(path string, fn func(Record) error) error {
	_, _, _, err := scan(path, fn)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// scan reads the log, reporting the highest sequence number, the record
// count, and the byte offset just past the last valid line, invoking fn
// (when non-nil) per record.
func scan(path string, fn func(Record) error) (lastSeq, count, valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var pendingErr error
	var offset int64
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		offset += int64(len(raw)) + 1
		if len(raw) == 0 {
			valid = offset
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Remember the defect: fatal unless it turns out to be the
			// final line (a torn tail from a crash mid-write).
			pendingErr = fmt.Errorf("journal: %s line %d: %w", path, line, err)
			continue
		}
		if pendingErr != nil {
			return lastSeq, count, valid, pendingErr
		}
		valid = offset
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		count++
		if fn != nil {
			if err := fn(rec); err != nil {
				return lastSeq, count, valid, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return lastSeq, count, valid, fmt.Errorf("journal: %s: %w", path, err)
	}
	return lastSeq, count, valid, nil
}
