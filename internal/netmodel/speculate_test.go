package netmodel

import (
	"math/rand"
	"testing"

	"magus/internal/config"
	"magus/internal/geo"
	"magus/internal/propagation"
	"magus/internal/topology"
	"magus/internal/utility"
)

// randomChange draws a plausible single-sector search move.
func randomChange(rng *rand.Rand, numSectors int) config.Change {
	b := rng.Intn(numSectors)
	switch rng.Intn(5) {
	case 0:
		return config.Change{Sector: b, PowerDelta: float64(1 + rng.Intn(4))}
	case 1:
		return config.Change{Sector: b, PowerDelta: -float64(1 + rng.Intn(4))}
	case 2:
		return config.Change{Sector: b, TiltDelta: 1 + rng.Intn(3)}
	case 3:
		return config.Change{Sector: b, TiltDelta: -(1 + rng.Intn(3))}
	default:
		return config.Change{Sector: b, TurnOff: true}
	}
}

// TestSpeculateMatchesFullEvaluation is the core delta-utility property:
// for a long random move sequence, Speculate's score must agree with
// committing the move and running a full-grid Utility scan, and the
// state must be exactly restored after each speculation.
func TestSpeculateMatchesFullEvaluation(t *testing.T) {
	m := testModel(t)
	s := baseline(t, m)
	rng := rand.New(rand.NewSource(42))
	u := utility.Performance

	cfgBefore := s.Cfg.Clone()
	u0 := s.Utility(u)
	nonNoop := 0
	for i := 0; i < 300; i++ {
		ch := randomChange(rng, m.Net.NumSectors())
		applied, got, err := s.Speculate(ch, u)
		if err != nil {
			t.Fatalf("Speculate(%v): %v", ch, err)
		}
		// Reference: commit on a clone, full evaluation.
		ref := s.Clone()
		refApplied, err := ref.Apply(ch)
		if err != nil {
			t.Fatalf("reference Apply(%v): %v", ch, err)
		}
		if applied != refApplied {
			t.Fatalf("move %d: speculated applied %v != reference %v", i, applied, refApplied)
		}
		want := ref.Utility(u)
		if applied.IsZero() {
			want = u0
		} else {
			nonNoop++
		}
		if relDiff(got, want) > 1e-9 {
			t.Fatalf("move %d (%v): speculated utility %v, full evaluation %v", i, ch, got, want)
		}
		// The state must be untouched.
		if !s.Cfg.Equal(cfgBefore) {
			t.Fatalf("move %d: configuration mutated by Speculate", i)
		}
		if got := s.UtilityTracked(u); relDiff(got, u0) > 1e-12 {
			t.Fatalf("move %d: running sum drifted: %v vs %v", i, got, u0)
		}
		// Occasionally commit a move so speculation is tested against many
		// base configurations, with tracking live across commits.
		if i%17 == 0 && !applied.IsZero() {
			s.MustApply(ch)
			cfgBefore = s.Cfg.Clone()
			u0 = s.Utility(u)
		}
	}
	if nonNoop < 100 {
		t.Fatalf("only %d effective moves exercised; scenario too degenerate", nonNoop)
	}
	// After everything, the running sum still matches a fresh full scan.
	if got, want := s.UtilityTracked(u), s.Utility(u); relDiff(got, want) > 1e-9 {
		t.Fatalf("final running sum %v != full scan %v", got, want)
	}
}

// TestSpeculateTurnOffOn covers the refreshSector path (tilt and on/off
// moves touch every entry of the sector, including serving handoffs).
func TestSpeculateTurnOffOn(t *testing.T) {
	m := testModel(t)
	s := baseline(t, m)
	u := utility.Performance
	central := m.Net.CentralSite()
	target := m.Net.Sites[central].Sectors[0]

	u0 := s.Utility(u)
	_, specOff, err := s.Speculate(config.Change{Sector: target, TurnOff: true}, u)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.Clone()
	ref.MustApply(config.Change{Sector: target, TurnOff: true})
	if want := ref.Utility(u); relDiff(specOff, want) > 1e-9 {
		t.Fatalf("turn-off speculation %v != full %v", specOff, want)
	}
	if specOff >= u0 && s.Load(target) > 0 {
		t.Errorf("turning off a loaded sector should cost utility: %v -> %v", u0, specOff)
	}
	if got := s.Utility(u); got != u0 {
		t.Fatalf("Utility changed after speculation: %v vs %v", got, u0)
	}
}

// TestTrackingInvalidatedByReassignment: changing the UE distribution
// must not leave a stale running sum behind.
func TestTrackingInvalidatedByReassignment(t *testing.T) {
	m := testModel(t)
	s := baseline(t, m)
	u := utility.Performance
	s.EnableUtilityTracking(u)
	s.MustApply(config.Change{Sector: 0, PowerDelta: 2})

	s.AssignUsersUniform() // rebuilds ue weights; must switch tracking off
	if got, want := s.UtilityTracked(u), s.Utility(u); relDiff(got, want) > 1e-9 {
		t.Fatalf("running sum stale after reassignment: %v vs %v", got, want)
	}
}

// TestTrackingSwitchesObjective: asking for a different utility function
// re-derives the sum rather than mixing objectives.
func TestTrackingSwitchesObjective(t *testing.T) {
	m := testModel(t)
	s := baseline(t, m)
	if got, want := s.UtilityTracked(utility.Performance), s.Utility(utility.Performance); relDiff(got, want) > 1e-9 {
		t.Fatalf("performance sum %v != %v", got, want)
	}
	if got, want := s.UtilityTracked(utility.Coverage), s.Utility(utility.Coverage); relDiff(got, want) > 1e-9 {
		t.Fatalf("coverage sum %v != %v", got, want)
	}
}

// TestCloneDropsTracking: a clone re-derives its own tracking and the
// parent's sum is unaffected by the clone's moves.
func TestCloneDropsTracking(t *testing.T) {
	m := testModel(t)
	s := baseline(t, m)
	u := utility.Performance
	parentSum := s.UtilityTracked(u)

	c := s.Clone()
	c.MustApply(config.Change{Sector: 1, PowerDelta: 3})
	if got, want := c.UtilityTracked(u), c.Utility(u); relDiff(got, want) > 1e-9 {
		t.Fatalf("clone sum %v != clone full scan %v", got, want)
	}
	if got := s.UtilityTracked(u); got != parentSum {
		t.Fatalf("parent sum changed by clone activity: %v vs %v", got, parentSum)
	}
}

// TestSINRImproversScratchReuse: repeated calls (including overlapping
// affected sets) must agree with a reference map-based membership test.
func TestSINRImproversScratchReuse(t *testing.T) {
	m := testModel(t)
	s := baseline(t, m)
	base := s.Clone()
	central := m.Net.CentralSite()
	targets := m.Net.Sites[central].Sectors
	for _, tg := range targets {
		s.MustApply(config.Change{Sector: tg, TurnOff: true})
	}
	degraded := s.DegradedGrids(base)
	if len(degraded) == 0 {
		t.Skip("no degradation in this layout")
	}
	neighbors := m.Net.NeighborSectors(targets, 4000)

	first := s.SINRImprovers(degraded, neighbors, 1)
	// A second identical call must return the same set (scratch cleared).
	second := s.SINRImprovers(degraded, neighbors, 1)
	if len(first) != len(second) {
		t.Fatalf("scratch not cleared: %v then %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("scratch not cleared: %v then %v", first, second)
		}
	}
	// A disjoint affected set must not see the previous marks.
	other := []int{}
	seen := map[int]bool{}
	for _, g := range degraded {
		seen[g] = true
	}
	for g := 0; g < m.Grid.NumCells() && len(other) < 5; g++ {
		if !seen[g] && m.UE(g) != 0 {
			other = append(other, g)
		}
	}
	if len(other) > 0 {
		got := s.SINRImprovers(other, neighbors, 1)
		for _, b := range got {
			found := false
			for _, ref := range m.core.sectorEntries[b] {
				for _, g := range other {
					if int(ref.Grid) == g {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("improver %d has no entry on the affected grids; stale scratch marks", b)
			}
		}
	}
}

func BenchmarkSpeculateNetmodel(b *testing.B) {
	m := testModelB(b)
	s := m.NewState(config.New(m.Net))
	s.AssignUsersUniform()
	u := utility.Performance
	s.EnableUtilityTracking(u)
	ch := config.Change{Sector: 1, PowerDelta: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Speculate(ch, u); err != nil {
			b.Fatal(err)
		}
	}
}

// testModelB mirrors testModel for benchmarks.
func testModelB(b *testing.B) *Model {
	b.Helper()
	net := topology.MustGenerate(topology.GenConfig{
		Seed:   3,
		Class:  topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 6000, 6000),
	})
	spm := propagation.MustNewSPM(2.635e9, nil)
	return MustNewModel(net, spm, net.Bounds, Params{CellSizeM: 200})
}
