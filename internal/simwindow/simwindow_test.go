package simwindow_test

import (
	"math"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"magus/internal/core"
	"magus/internal/migrate"
	"magus/internal/runbook"
	"magus/internal/schedule"
	"magus/internal/simwindow"
	"magus/internal/topology"
	"magus/internal/upgrade"
	"magus/internal/utility"
)

// The fixture plans one suburban single-sector upgrade and builds its
// gradual and one-shot runbooks. Engine construction dominates test
// time, so every test shares it; simulators fork the model and never
// mutate the fixture.
var fix struct {
	once sync.Once
	err  error
	eng  *core.Engine
	plan *core.Plan
	grad *runbook.Runbook
	one  *runbook.Runbook
}

func fixture(t testing.TB) (*core.Engine, *core.Plan, *runbook.Runbook, *runbook.Runbook) {
	t.Helper()
	fix.once.Do(func() {
		eng, err := core.NewEngine(core.SetupConfig{
			Seed:          3,
			Class:         topology.Suburban,
			RegionSpanM:   6000,
			CellSizeM:     200,
			EqualizeSteps: 200,
		})
		if err != nil {
			fix.err = err
			return
		}
		plan, err := eng.Mitigate(upgrade.SingleSector, core.PowerOnly, utility.Performance)
		if err != nil {
			fix.err = err
			return
		}
		mig, err := plan.GradualMigration(migrate.Options{})
		if err != nil {
			fix.err = err
			return
		}
		grad, err := runbook.Build(plan, mig)
		if err != nil {
			fix.err = err
			return
		}
		oneMig, err := plan.OneShotMigration(migrate.Options{})
		if err != nil {
			fix.err = err
			return
		}
		one, err := runbook.Build(plan, oneMig)
		if err != nil {
			fix.err = err
			return
		}
		fix.eng, fix.plan, fix.grad, fix.one = eng, plan, grad, one
	})
	if fix.err != nil {
		t.Fatalf("fixture: %v", fix.err)
	}
	return fix.eng, fix.plan, fix.grad, fix.one
}

func run(t *testing.T, rb *runbook.Runbook, cfg simwindow.Config) *simwindow.Outcome {
	t.Helper()
	eng, _, _, _ := fixture(t)
	sim, err := simwindow.New(eng.Before, rb, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

// TestSimDeterminism is the bit-determinism contract: two simulations
// of the same (scenario, seed, fault script) — with diurnal load,
// noise, faults of every kind, and a parallel replanner — produce
// identical time series. CI runs this test twice (-count=2) so the
// contract also holds across processes.
func TestSimDeterminism(t *testing.T) {
	_, _, grad, _ := fixture(t)
	profile := schedule.DefaultProfile()
	mkCfg := func() simwindow.Config {
		faults, err := simwindow.ParseFaults(
			"push-delay@2+3, push-fail@3, sector-down@25:" + itoa(grad.TunedSectors[0]) +
				", surge@10+8:" + itoa(grad.Targets[0]) + ":x1.8")
		if err != nil {
			t.Fatalf("ParseFaults: %v", err)
		}
		return simwindow.Config{
			Seed:      42,
			Ticks:     60,
			Profile:   &profile,
			LoadNoise: 0.05,
			Faults:    faults,
			Replanner: &simwindow.SearchReplanner{},
			Workers:   2,
		}
	}
	a := run(t, grad, mkCfg())
	b := run(t, grad, mkCfg())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identically-seeded runs diverged:\nrun A: %+v\nrun B: %+v", a.Summary, b.Summary)
	}
	if a.Summary.FaultsInjected == 0 || a.Summary.PushesDropped != 1 || a.Summary.PushesDelayed != 1 {
		t.Fatalf("fault script not exercised: %+v", a.Summary)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// TestReplanRecovery is the acceptance scenario for the replanner: the
// plan's biggest compensating neighbor fails after the migration
// completes, utility falls below the f(C_after) floor, and the
// replanner's corrective pushes must (a) keep the replanned run at or
// above the no-replan run on every tick after recovery starts and (b)
// end the window at or above the floor.
func TestReplanRecovery(t *testing.T) {
	_, plan, grad, _ := fixture(t)

	// The compensating neighbor whose loss hurts most: the tuned sector
	// carrying the highest load under C_after.
	victim, bestLoad := -1, -1.0
	for _, b := range grad.TunedSectors {
		if l := plan.After.Load(b); l > bestLoad {
			victim, bestLoad = b, l
		}
	}
	if victim < 0 {
		t.Fatalf("runbook tunes no sectors")
	}
	faultTick := len(grad.Steps) + 5
	base := simwindow.Config{
		Seed:  7,
		Ticks: faultTick + 45,
		Faults: []simwindow.Fault{
			{Kind: simwindow.FaultSectorDown, Tick: faultTick, Sector: victim},
		},
	}
	noReplan := run(t, grad, base)

	withCfg := base
	// Workers: 1 keeps the replanner on the exact sequential search
	// path, whose accepted steps are individually utility-improving —
	// the property the per-tick comparison below relies on.
	withCfg.Replanner = &simwindow.SearchReplanner{}
	withCfg.Workers = 1
	withReplan := run(t, grad, withCfg)

	if withReplan.Summary.Replans == 0 {
		t.Fatalf("sector %d going down (load %.1f) never breached the floor: %+v",
			victim, bestLoad, withReplan.Summary)
	}

	// Identical histories until the first corrective push lands.
	for i := 0; i <= faultTick; i++ {
		if withReplan.Series[i].Utility != noReplan.Series[i].Utility {
			t.Fatalf("tick %d: runs diverged before any replan push (%.6f vs %.6f)",
				i, withReplan.Series[i].Utility, noReplan.Series[i].Utility)
		}
	}

	// Recovery: from the first tick the replanned run regains the floor,
	// it must dominate the no-replan run and stay recovered.
	recovered := -1
	for i := faultTick + 1; i < len(withReplan.Series); i++ {
		tk := withReplan.Series[i]
		if tk.Utility >= tk.FloorUtility-1e-9*(1+math.Abs(tk.FloorUtility)) {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatalf("replanned run never regained the floor: %+v", withReplan.Summary)
	}
	for i := recovered; i < len(withReplan.Series); i++ {
		uw, un := withReplan.Series[i].Utility, noReplan.Series[i].Utility
		if uw < un-1e-9*(1+math.Abs(un)) {
			t.Fatalf("tick %d: replanned utility %.6f below no-replan %.6f", i, uw, un)
		}
	}
	if !withReplan.Summary.EndsAboveFloor {
		t.Fatalf("replanned run ends below floor: final %.6f vs floor %.6f",
			withReplan.Summary.FinalUtility, withReplan.Summary.FinalFloor)
	}
	if noReplan.Summary.EndsAboveFloor {
		t.Fatalf("no-replan run recovered on its own; the fault is too weak to test replanning")
	}
}

// TestGradualSmootherThanOneShot checks the migration claim on the
// simulated timeline: the gradual runbook's largest per-tick handover
// burst is strictly smaller than the one-shot reconfiguration's.
func TestGradualSmootherThanOneShot(t *testing.T) {
	_, _, grad, one := fixture(t)
	cfg := simwindow.Config{Seed: 1, Ticks: len(grad.Steps) + 10}
	gradOut := run(t, grad, cfg)
	oneOut := run(t, one, cfg)
	if gradOut.Summary.MaxTickHandovers >= oneOut.Summary.MaxTickHandovers {
		t.Fatalf("gradual max burst %.1f not below one-shot %.1f",
			gradOut.Summary.MaxTickHandovers, oneOut.Summary.MaxTickHandovers)
	}
	if oneOut.Summary.PushesApplied != 1 {
		t.Fatalf("one-shot runbook applied %d pushes, want 1", oneOut.Summary.PushesApplied)
	}
}

// TestPushFaults verifies the push fault semantics: a lost push leaves
// the window short of C_after, a delayed push shifts the schedule but
// converges to the same final configuration.
func TestPushFaults(t *testing.T) {
	_, _, grad, _ := fixture(t)
	clean := run(t, grad, simwindow.Config{Seed: 1})

	// Drop a step that carries a compensating (non-target) change:
	// target power deltas before the off-air push don't survive into the
	// final configuration, so losing one of those would be invisible at
	// the end of the window.
	targetSet := map[int]bool{}
	for _, tg := range grad.Targets {
		targetSet[tg] = true
	}
	dropStep := -1
	for _, st := range grad.Steps {
		for _, ch := range st.Changes {
			if !targetSet[ch.Sector] {
				dropStep = st.Index
				break
			}
		}
		if dropStep >= 0 {
			break
		}
	}
	if dropStep < 0 {
		t.Fatalf("runbook has no compensating changes to drop")
	}

	lost := run(t, grad, simwindow.Config{
		Seed:   1,
		Faults: []simwindow.Fault{{Kind: simwindow.FaultPushFail, Step: dropStep}},
	})
	if lost.Summary.PushesDropped != 1 || lost.Summary.PushesApplied != len(grad.Steps)-1 {
		t.Fatalf("push-fail: %+v", lost.Summary)
	}
	if lost.Summary.FinalUtility >= clean.Summary.FinalUtility {
		t.Fatalf("losing a push did not hurt: %.6f >= %.6f",
			lost.Summary.FinalUtility, clean.Summary.FinalUtility)
	}

	delayed := run(t, grad, simwindow.Config{
		Seed:   1,
		Faults: []simwindow.Fault{{Kind: simwindow.FaultPushDelay, Step: 2, DelayTicks: 4}},
	})
	if delayed.Summary.PushesDelayed != 1 || delayed.Summary.PushesApplied != len(grad.Steps) {
		t.Fatalf("push-delay: %+v", delayed.Summary)
	}
	if math.Abs(delayed.Summary.FinalUtility-clean.Summary.FinalUtility) > 1e-9 {
		t.Fatalf("delayed run should converge to the clean final utility: %.9f vs %.9f",
			delayed.Summary.FinalUtility, clean.Summary.FinalUtility)
	}
}

// TestFloorTracksLoad: under a diurnal profile the floor is evaluated
// at the tick's load, so it must move with the load factor rather than
// stay at the planning-time constant.
func TestFloorTracksLoad(t *testing.T) {
	_, _, grad, _ := fixture(t)
	profile := schedule.DefaultProfile()
	out := run(t, grad, simwindow.Config{Seed: 1, Ticks: 120, Profile: &profile, StartHour: 4})
	first, last := out.Series[0], out.Series[len(out.Series)-1]
	if first.LoadFactor == last.LoadFactor {
		t.Fatalf("load factor never moved (%.3f)", first.LoadFactor)
	}
	if first.FloorUtility == last.FloorUtility {
		t.Fatalf("floor did not track load: %.6f at both ends", first.FloorUtility)
	}
}
