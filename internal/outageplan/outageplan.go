// Package outageplan implements the paper's future-work direction of
// "using Magus's predictive model for unplanned outages (using Magus's
// computed configuration as a starting point for feedback control, and
// pre-computing configurations for different outages)" (Section 8).
//
// A Planner walks a scope of sectors and, for each one, runs the full
// Magus search as if that sector had failed, storing the resulting
// C_after and its expected recovery. When an unplanned outage hits, the
// operator (or a SON controller) looks the failed sector up and applies
// the precomputed configuration immediately — converting the reactive
// cell-outage-compensation problem into a table lookup plus an optional
// short feedback refinement.
package outageplan

import (
	"context"
	"fmt"
	"sort"

	"magus/internal/config"
	"magus/internal/core"
	"magus/internal/feedback"
	"magus/internal/netmodel"
	"magus/internal/search"
	"magus/internal/upgrade"
	"magus/internal/utility"
)

// Entry is the precomputed mitigation for one sector's outage.
type Entry struct {
	// Sector is the sector whose failure this entry mitigates.
	Sector int
	// AfterCfg is the precomputed neighbor configuration (the sector
	// itself marked off-air).
	AfterCfg *config.Config
	// Neighbors is the tuned set.
	Neighbors []int
	// ExpectedRecovery is the model-predicted recovery ratio.
	ExpectedRecovery float64
	// ExpectedUtility is the model-predicted f(C_after).
	ExpectedUtility float64
	// SearchSteps counts the tuning moves in the precomputed plan.
	SearchSteps int
}

// Planner holds precomputed outage responses for an engine's market.
type Planner struct {
	engine  *core.Engine
	util    utility.Func
	entries map[int]*Entry
}

// Options configure planning.
type Options struct {
	// Util is the mitigation objective (default utility.Performance).
	Util utility.Func
	// Method is the search strategy (default core.Joint).
	Method core.Method
}

// New precomputes outage responses for every sector in scope (nil scope
// means every sector inside the engine's tuning area).
func New(engine *core.Engine, scope []int, opts Options) (*Planner, error) {
	if opts.Util.U == nil {
		opts.Util = utility.Performance
	}
	method := opts.Method
	if method == 0 {
		method = core.Joint
	}
	if scope == nil {
		for b := range engine.Net.Sectors {
			if engine.TuningArea().Contains(engine.Net.Sectors[b].Pos) {
				scope = append(scope, b)
			}
		}
		if len(scope) == 0 {
			// Sparse layouts may have no site inside the tuning area;
			// cover the central site.
			scope = engine.Net.Sites[engine.Net.CentralSite()].Sectors
		}
	}
	if len(scope) == 0 {
		return nil, fmt.Errorf("outageplan: empty sector scope")
	}
	p := &Planner{engine: engine, util: opts.Util, entries: make(map[int]*Entry, len(scope))}
	for _, sector := range scope {
		plan, err := engine.MitigateTargets(upgrade.SingleSector, method, opts.Util, []int{sector})
		if err != nil {
			return nil, fmt.Errorf("outageplan: sector %d: %w", sector, err)
		}
		p.entries[sector] = &Entry{
			Sector:           sector,
			AfterCfg:         plan.After.Cfg.Clone(),
			Neighbors:        plan.Neighbors,
			ExpectedRecovery: plan.RecoveryRatio(),
			ExpectedUtility:  plan.UtilityAfter,
			SearchSteps:      len(plan.Search.Steps),
		}
	}
	return p, nil
}

// Covered returns the sorted sector IDs with precomputed responses.
func (p *Planner) Covered() []int {
	out := make([]int, 0, len(p.entries))
	for s := range p.entries {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Lookup returns the precomputed entry for a failed sector.
func (p *Planner) Lookup(sector int) (*Entry, bool) {
	e, ok := p.entries[sector]
	return e, ok
}

// Response is the outcome of reacting to an unplanned outage.
type Response struct {
	// Precomputed reports whether a table entry existed for the failed
	// sector (otherwise the response fell back to a live search).
	Precomputed bool
	// UtilityOutage is the utility right after the failure, before any
	// reaction.
	UtilityOutage float64
	// UtilityApplied is the utility after applying the (precomputed or
	// freshly searched) configuration.
	UtilityApplied float64
	// UtilityRefined is the utility after the optional feedback
	// refinement.
	UtilityRefined float64
	// RefinementSteps is the number of feedback steps spent refining.
	RefinementSteps int
	// Final is the resulting network state.
	Final *netmodel.State
}

// Respond reacts to an unplanned outage of the given sector: apply the
// precomputed configuration (or search live if the sector is not
// covered), then optionally refine with feedback (refineSteps > 0).
func (p *Planner) Respond(sector int, refineSteps int) (*Response, error) {
	return p.RespondContext(context.Background(), sector, refineSteps)
}

// RespondContext is Respond with a cancellation context; ctx bounds the
// live-search fallback for uncovered sectors (table lookups are
// effectively instant and not interruptible).
func (p *Planner) RespondContext(ctx context.Context, sector, refineSteps int) (*Response, error) {
	if sector < 0 || sector >= p.engine.Net.NumSectors() {
		return nil, fmt.Errorf("outageplan: sector %d out of range", sector)
	}
	res := &Response{}

	// The failure happens on the live network.
	live := p.engine.Before.Clone()
	if _, err := live.Apply(config.Change{Sector: sector, TurnOff: true}); err != nil {
		return nil, err
	}
	res.UtilityOutage = live.Utility(p.util)

	entry, ok := p.Lookup(sector)
	res.Precomputed = ok
	var neighbors []int
	if ok {
		// Table hit: apply the stored configuration delta directly.
		diff, err := live.Cfg.Diff(entry.AfterCfg)
		if err != nil {
			return nil, err
		}
		for _, ch := range diff {
			if _, err := live.Apply(ch); err != nil {
				return nil, err
			}
		}
		neighbors = entry.Neighbors
	} else {
		// Fallback: run the search now (this is what the precomputation
		// saves).
		neighbors = search.SortByDistanceTo(live,
			p.engine.Net.NeighborSectors([]int{sector}, p.engine.NeighborRadius()),
			[]int{sector})
		if _, err := search.Joint(live, p.engine.Before, neighbors,
			search.Options{Util: p.util, Ctx: ctx}); err != nil {
			return nil, err
		}
	}
	res.UtilityApplied = live.Utility(p.util)
	res.UtilityRefined = res.UtilityApplied

	if refineSteps > 0 {
		fb, err := feedback.Reactive(live, neighbors, feedback.Idealized,
			feedback.Options{Util: p.util, MaxSteps: refineSteps, IncludeTilt: true})
		if err != nil {
			return nil, err
		}
		res.UtilityRefined = fb.FinalUtility
		res.RefinementSteps = fb.Steps
	}
	res.Final = live
	return res, nil
}
