package search

import (
	"fmt"
	"sync"

	"magus/internal/config"
	"magus/internal/netmodel"
)

// BruteForcePower exhaustively searches per-sector power levels for a
// small sector set and commits the best configuration to st. levels[i]
// lists the absolute powers (dBm) tried for sectors[i]. The search space
// is capped at maxCombos (default 1e6) to keep it honest about why the
// paper needs a heuristic.
//
// With Options.Workers > 1 the first sector's levels are striped across
// worker-local state clones, each enumerating its share of the
// combination space; the winner is reduced deterministically (highest
// utility, earliest combination on ties — the same combination the
// sequential scan keeps, up to floating-point rounding of incremental
// state updates along the different enumeration paths).
func BruteForcePower(st *netmodel.State, sectors []int, levels [][]float64, opts Options, maxCombos int) (*Result, error) {
	opts.applyDefaults()
	if len(sectors) != len(levels) {
		return nil, fmt.Errorf("search: %d sectors but %d level sets", len(sectors), len(levels))
	}
	if maxCombos <= 0 {
		maxCombos = 1_000_000
	}
	combos := 1
	for _, ls := range levels {
		if len(ls) == 0 {
			return nil, fmt.Errorf("search: empty level set")
		}
		combos *= len(ls)
		if combos > maxCombos {
			return nil, fmt.Errorf("search: %d combinations exceed cap %d", combos, maxCombos)
		}
	}

	res := &Result{}
	startUtility := st.Utility(opts.Util)
	bestUtility := startUtility
	var bestPowers []float64

	original := make([]float64, len(sectors))
	for i, b := range sectors {
		original[i] = st.Cfg.PowerDbm(b)
	}

	if opts.Workers > 1 && len(sectors) > 0 && len(levels[0]) > 1 {
		var err error
		bestUtility, bestPowers, err = bruteForceParallel(st, sectors, levels, &opts, startUtility, res)
		if err != nil {
			return nil, err
		}
		res.Stats.ParallelBatches = 1
		res.Stats.Workers = opts.Workers
	} else {
		idx := make([]int, len(sectors))
		for {
			// Apply current combination.
			for i, b := range sectors {
				delta := levels[i][idx[i]] - st.Cfg.PowerDbm(b)
				if delta != 0 {
					if _, err := st.Apply(config.Change{Sector: b, PowerDelta: delta}); err != nil {
						return nil, err
					}
				}
			}
			res.Evaluations++
			if u := st.Utility(opts.Util); u > bestUtility {
				bestUtility = u
				bestPowers = make([]float64, len(sectors))
				for i, b := range sectors {
					bestPowers[i] = st.Cfg.PowerDbm(b)
				}
			}
			// Advance the odometer.
			i := 0
			for ; i < len(idx); i++ {
				idx[i]++
				if idx[i] < len(levels[i]) {
					break
				}
				idx[i] = 0
			}
			if i == len(idx) {
				break
			}
		}
	}
	res.Stats.MovesProposed = int64(res.Evaluations)
	res.Stats.FullEvaluations = int64(res.Evaluations)
	if res.Stats.Workers == 0 {
		res.Stats.Workers = 1
	}

	// Commit the winner (or restore the original when nothing improved).
	target := bestPowers
	if target == nil {
		target = original
	}
	for i, b := range sectors {
		delta := target[i] - st.Cfg.PowerDbm(b)
		if delta != 0 {
			applied, err := st.Apply(config.Change{Sector: b, PowerDelta: delta})
			if err != nil {
				return nil, err
			}
			if bestPowers != nil {
				res.Steps = append(res.Steps, Step{Change: applied})
				res.Stats.MovesAccepted++
			}
		}
	}
	res.FinalUtility = st.Utility(opts.Util)
	if len(res.Steps) > 0 {
		res.Steps[len(res.Steps)-1].Utility = res.FinalUtility
	}
	return res, nil
}

// bruteForceParallel stripes levels[0] across worker clones. Each worker
// walks its slice of the combination space on a private clone; the
// reduce keeps the highest utility, breaking ties toward the earliest
// combination in the sequential odometer order (rank).
func bruteForceParallel(st *netmodel.State, sectors []int, levels [][]float64, opts *Options, startUtility float64, res *Result) (float64, []float64, error) {
	type verdict struct {
		utility float64
		rank    int
		powers  []float64
		evals   int
		err     error
	}
	workers := opts.Workers
	if workers > len(levels[0]) {
		workers = len(levels[0])
	}
	verdicts := make([]verdict, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := &verdicts[w]
			v.utility = startUtility
			v.rank = -1
			work := st.Clone()
			idx := make([]int, len(sectors))
			idx[0] = w // stride over the first dimension
			for {
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					v.err = opts.Ctx.Err()
					return
				}
				for i, b := range sectors {
					delta := levels[i][idx[i]] - work.Cfg.PowerDbm(b)
					if delta != 0 {
						if _, err := work.Apply(config.Change{Sector: b, PowerDelta: delta}); err != nil {
							v.err = err
							return
						}
					}
				}
				v.evals++
				// The worker enumerates in increasing rank order, so
				// keeping only strict improvements retains the earliest
				// combination among equal-utility ones, as the sequential
				// scan does.
				if u := work.Utility(opts.Util); u > v.utility {
					v.utility = u
					v.rank = comboRank(idx, levels)
					v.powers = make([]float64, len(sectors))
					for i, b := range sectors {
						v.powers[i] = work.Cfg.PowerDbm(b)
					}
				}
				// Advance: first dimension by the stride, the rest as a
				// normal odometer.
				idx[0] += workers
				if idx[0] < len(levels[0]) {
					continue
				}
				idx[0] = w
				i := 1
				for ; i < len(idx); i++ {
					idx[i]++
					if idx[i] < len(levels[i]) {
						break
					}
					idx[i] = 0
				}
				if i == len(idx) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	bestUtility := startUtility
	bestRank := -1
	var bestPowers []float64
	for _, v := range verdicts {
		if v.err != nil {
			return 0, nil, v.err
		}
		res.Evaluations += v.evals
		if v.powers == nil {
			continue
		}
		if v.utility > bestUtility || (v.utility == bestUtility && bestRank >= 0 && v.rank < bestRank) {
			bestUtility = v.utility
			bestRank = v.rank
			bestPowers = v.powers
		}
	}
	return bestUtility, bestPowers, nil
}

// comboRank is a combination's position in the sequential odometer
// enumeration (first dimension fastest).
func comboRank(idx []int, levels [][]float64) int {
	rank := 0
	for i := len(idx) - 1; i >= 0; i-- {
		rank = rank*len(levels[i]) + idx[i]
	}
	return rank
}
