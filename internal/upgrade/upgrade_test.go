package upgrade

import (
	"testing"
	"time"

	"magus/internal/geo"
	"magus/internal/topology"
)

func testNet(t *testing.T) *topology.Network {
	t.Helper()
	return topology.MustGenerate(topology.GenConfig{
		Seed:   1,
		Class:  topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 10000, 10000),
	})
}

func TestScenarioStrings(t *testing.T) {
	if SingleSector.Short() != "(a)" || FullSite.Short() != "(b)" || FourCorners.Short() != "(c)" {
		t.Error("short labels wrong")
	}
	for _, s := range AllScenarios {
		if s.String() == "" {
			t.Errorf("scenario %d has empty name", s)
		}
	}
	if Scenario(9).Short() != "(?)" {
		t.Error("unknown scenario short label")
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario should produce a name")
	}
}

func TestTargetsSingleSector(t *testing.T) {
	net := testNet(t)
	area := geo.NewRectCentered(geo.Point{}, 4000, 4000)
	targets, err := Targets(net, SingleSector, area)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("scenario (a) yields %d targets, want 1", len(targets))
	}
	central := net.NearestSite(area.Center())
	if net.Sectors[targets[0]].Site != central {
		t.Error("target not at central site")
	}
}

func TestTargetsFullSite(t *testing.T) {
	net := testNet(t)
	area := geo.NewRectCentered(geo.Point{}, 4000, 4000)
	targets, err := Targets(net, FullSite, area)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("scenario (b) yields %d targets, want 3", len(targets))
	}
	site := net.Sectors[targets[0]].Site
	for _, tg := range targets {
		if net.Sectors[tg].Site != site {
			t.Error("full-site targets span multiple sites")
		}
	}
}

func TestTargetsFourCorners(t *testing.T) {
	net := testNet(t)
	area := geo.NewRectCentered(geo.Point{}, 6000, 6000)
	targets, err := Targets(net, FourCorners, area)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 4 {
		t.Fatalf("scenario (c) yields %d targets, want 4", len(targets))
	}
	sites := map[int]bool{}
	for _, tg := range targets {
		sites[net.Sectors[tg].Site] = true
	}
	if len(sites) != 4 {
		t.Error("corner targets should be at four distinct sites")
	}
}

func TestTargetsUnknownScenario(t *testing.T) {
	net := testNet(t)
	if _, err := Targets(net, Scenario(9), net.Bounds); err == nil {
		t.Error("unknown scenario should fail")
	}
}

func TestTargetsEmptyNetwork(t *testing.T) {
	empty := &topology.Network{}
	if _, err := Targets(empty, SingleSector, geo.NewRectCentered(geo.Point{}, 100, 100)); err == nil {
		t.Error("empty network should fail")
	}
}

func TestCalendarEveryDayCovered(t *testing.T) {
	events := GenerateCalendar(CalendarConfig{Seed: 1, Days: 365})
	st := AnalyzeCalendar(events, 365)
	if st.DaysCovered != 365 {
		t.Errorf("days covered = %d, want 365 (paper: upgrades every day)", st.DaysCovered)
	}
	if st.Total < 365 {
		t.Errorf("total upgrades = %d, want >= 365", st.Total)
	}
}

func TestCalendarWeekdayBias(t *testing.T) {
	events := GenerateCalendar(CalendarConfig{Seed: 2, Days: 364})
	st := AnalyzeCalendar(events, 364)
	// Paper: more than twice as likely Tuesday-Friday.
	if st.TueFriRatio < 1.8 {
		t.Errorf("Tue-Fri ratio = %v, want around or above 2", st.TueFriRatio)
	}
	for wd := time.Tuesday; wd <= time.Friday; wd++ {
		if st.ByWeekday[wd] <= st.ByWeekday[time.Sunday] {
			t.Errorf("%v count %d not above Sunday %d",
				wd, st.ByWeekday[wd], st.ByWeekday[time.Sunday])
		}
	}
}

func TestCalendarDurations(t *testing.T) {
	events := GenerateCalendar(CalendarConfig{Seed: 3, Days: 365})
	st := AnalyzeCalendar(events, 365)
	// Paper: planned upgrades typically last 4-6 hours.
	if st.MeanDurationHours < 4 || st.MeanDurationHours > 6 {
		t.Errorf("mean duration = %v h, want within [4, 6]", st.MeanDurationHours)
	}
	for _, e := range events {
		if e.DurationHours < 4 || e.DurationHours > 6 {
			t.Fatalf("duration %v outside [4, 6]", e.DurationHours)
		}
		if e.StartHour < 0 || e.StartHour > 23 {
			t.Fatalf("start hour %d invalid", e.StartHour)
		}
	}
	// Some upgrades unavoidably overlap business hours.
	if st.BusyHourFraction <= 0 || st.BusyHourFraction >= 1 {
		t.Errorf("busy-hour fraction = %v, want strictly between 0 and 1", st.BusyHourFraction)
	}
}

func TestCalendarDeterministic(t *testing.T) {
	a := GenerateCalendar(CalendarConfig{Seed: 7, Days: 100})
	b := GenerateCalendar(CalendarConfig{Seed: 7, Days: 100})
	if len(a) != len(b) {
		t.Fatal("same seed produced different calendars")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical seeds", i)
		}
	}
}

func TestAnalyzeCalendarEmpty(t *testing.T) {
	st := AnalyzeCalendar(nil, 0)
	if st.Total != 0 || st.DaysCovered != 0 || st.MeanDurationHours != 0 {
		t.Error("empty calendar stats should be zero")
	}
}
