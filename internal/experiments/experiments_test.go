package experiments

import (
	"strings"
	"testing"

	"magus/internal/core"
	"magus/internal/topology"
	"magus/internal/upgrade"
)

// Tests use a single replicate seed: the engine cache makes the suite
// share built markets, and the qualitative assertions hold per seed.
var testSeeds = []int64{1}

func runTable1(t *testing.T) *Table1 {
	t.Helper()
	tab, err := RunTable1(Table1Options{Seeds: testSeeds})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTable1CellsInRange(t *testing.T) {
	tab := runTable1(t)
	for _, class := range AllClasses {
		for _, sc := range tab.Scenarios {
			for _, m := range tab.Methods {
				rr := tab.Cell(class, sc, m)
				if rr < -0.05 || rr > 1.05 {
					t.Errorf("%v %v %v: recovery %v outside [0, 1]", class, sc, m, rr)
				}
			}
		}
	}
}

func TestTable1SuburbanDominatesPower(t *testing.T) {
	// The paper's headline Table 1 finding: "the greatest gains are in
	// suburban areas" for power tuning.
	tab := runTable1(t)
	sub := tab.MeanByClass(topology.Suburban, core.PowerOnly)
	rur := tab.MeanByClass(topology.Rural, core.PowerOnly)
	urb := tab.MeanByClass(topology.Urban, core.PowerOnly)
	if sub <= rur {
		t.Errorf("suburban power recovery %v not above rural %v", sub, rur)
	}
	if sub <= urb {
		t.Errorf("suburban power recovery %v not above urban %v", sub, urb)
	}
}

func TestTable1JointBeatsIndividual(t *testing.T) {
	// "the joint approach always performs better than power-tuning and
	// tilt-tuning individually" — asserted on per-class means.
	tab := runTable1(t)
	for _, class := range AllClasses {
		joint := tab.MeanByClass(class, core.Joint)
		power := tab.MeanByClass(class, core.PowerOnly)
		tilt := tab.MeanByClass(class, core.TiltOnly)
		if joint < power-0.02 {
			t.Errorf("%v: joint %v below power %v", class, joint, power)
		}
		if joint < tilt-0.02 {
			t.Errorf("%v: joint %v below tilt %v", class, joint, tilt)
		}
	}
}

func TestTable1TiltWeakerThanPowerOverall(t *testing.T) {
	// "In general, tilt-tuning cannot be as good as power-tuning" — an
	// aggregate claim (the paper itself has per-cell exceptions, e.g.
	// urban (b)).
	tab := runTable1(t)
	power, tilt := 0.0, 0.0
	for _, class := range AllClasses {
		power += tab.MeanByClass(class, core.PowerOnly)
		tilt += tab.MeanByClass(class, core.TiltOnly)
	}
	if tilt >= power {
		t.Errorf("aggregate tilt recovery %v not below power %v", tilt, power)
	}
}

func TestTable1String(t *testing.T) {
	tab := runTable1(t)
	s := tab.String()
	for _, want := range []string{"Table 1", "power-tuning", "tilt-tuning", "joint", "sub(a)", "%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

func TestTable2DiagonalDominance(t *testing.T) {
	tab, err := RunTable2(1)
	if err != nil {
		t.Fatal(err)
	}
	perf := tab.Recovery["performance"]
	cov := tab.Recovery["coverage"]
	// Optimizing for a metric must recover that metric better than
	// optimizing for the other one — Table 2's message.
	if perf["performance"] <= cov["performance"] {
		t.Errorf("performance recovery: optimizing perf %v should beat optimizing cov %v",
			perf["performance"], cov["performance"])
	}
	if cov["coverage"] <= perf["coverage"] {
		t.Errorf("coverage recovery: optimizing cov %v should beat optimizing perf %v",
			cov["coverage"], perf["coverage"])
	}
	if !strings.Contains(tab.String(), "Table 2") {
		t.Error("Table2 output header missing")
	}
}

func TestFigure8DensityOrdering(t *testing.T) {
	fig, err := RunFigure8(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(fig.Rows))
	}
	// Paper: 26 rural / 55 suburban / 178 urban interfering sectors —
	// strictly increasing with density.
	for i := 1; i < len(fig.Rows); i++ {
		if fig.Rows[i].InterferingSectors <= fig.Rows[i-1].InterferingSectors {
			t.Errorf("interferer count not increasing: %v=%d vs %v=%d",
				fig.Rows[i-1].Class, fig.Rows[i-1].InterferingSectors,
				fig.Rows[i].Class, fig.Rows[i].InterferingSectors)
		}
	}
	for _, r := range fig.Rows {
		if r.ServedFraction <= 0.3 || r.ServedFraction > 1 {
			t.Errorf("%v served fraction %v implausible", r.Class, r.ServedFraction)
		}
		if r.CoverageMap == "" {
			t.Errorf("%v missing coverage map", r.Class)
		}
	}
	if !strings.Contains(fig.String(), "Figure 8") {
		t.Error("Figure8 output header missing")
	}
}

func TestFigure10RuralLimit(t *testing.T) {
	fig, err := RunFigure10(1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ServedUpgrade >= fig.ServedBefore {
		t.Errorf("upgrade should cost coverage: %d -> %d", fig.ServedBefore, fig.ServedUpgrade)
	}
	// The paper's Figure 10 claim: even a +10 dB neighbor boost cannot
	// recover rural coverage (noise-limited, power-capped).
	if fig.RecoveredFraction > 0.5 {
		t.Errorf("rural boost recovered %v of coverage, expected under half", fig.RecoveredFraction)
	}
	if !fig.BoostHitsPowerCap {
		t.Error("+10 dB should exceed the rural hardware power cap")
	}
	if !strings.Contains(fig.String(), "Figure 10") {
		t.Error("Figure10 output header missing")
	}
}

func TestFigure11GradualBenefits(t *testing.T) {
	fig, err := RunFigure11(1)
	if err != nil {
		t.Fatal(err)
	}
	g, o := fig.Gradual, fig.OneShot
	if g.MaxSimultaneousHandovers > o.MaxSimultaneousHandovers {
		t.Errorf("gradual burst %v above one-shot %v",
			g.MaxSimultaneousHandovers, o.MaxSimultaneousHandovers)
	}
	if fig.BurstReductionFactor < 1.5 {
		t.Errorf("burst reduction %vx, want >= 1.5x (paper: 3x)", fig.BurstReductionFactor)
	}
	// Paper: 96-99.7% of UEs get a seamless handover under gradual
	// tuning.
	if g.SeamlessFraction() < 0.9 {
		t.Errorf("gradual seamless fraction %v, want >= 0.9", g.SeamlessFraction())
	}
	if g.SeamlessFraction() <= o.SeamlessFraction() {
		t.Errorf("gradual seamless %v should beat one-shot %v",
			g.SeamlessFraction(), o.SeamlessFraction())
	}
	// Utility floor: never below f(C_after) among non-jump steps.
	if !g.JumpedToAfter && g.UtilityFloor < g.AfterUtility-1e-9 {
		t.Errorf("utility floor %v below f(C_after) %v", g.UtilityFloor, g.AfterUtility)
	}
	if !strings.Contains(fig.String(), "Figure 11") {
		t.Error("Figure11 output header missing")
	}
}

func TestFigure12ConvergenceShape(t *testing.T) {
	fig, err := RunFigure12(1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.IdealizedSteps < 1 {
		t.Error("idealized feedback should need at least one step")
	}
	// The realistic estimate costs far more measurement rounds than the
	// idealized one (the paper's 27 vs 310).
	if fig.RealisticMeasurements <= fig.IdealizedSteps {
		t.Errorf("realistic measurements %d not above idealized steps %d",
			fig.RealisticMeasurements, fig.IdealizedSteps)
	}
	// Convergence takes hours at realistic measurement cost (paper:
	// "could recover performance only after two hours").
	if fig.RealisticHours < 1 {
		t.Errorf("realistic convergence %v h, expected >= 1 h", fig.RealisticHours)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	if !strings.Contains(fig.String(), "Figure 12") {
		t.Error("Figure12 output header missing")
	}
}

func TestFigure13ImprovementDistribution(t *testing.T) {
	fig, err := RunFigure13(Figure13Options{Seeds: testSeeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Ratios) == 0 {
		t.Fatal("no improvement ratios collected")
	}
	if len(fig.Ratios)+fig.Skipped != 9 {
		t.Errorf("expected 9 scenarios for one seed, got %d + %d skipped",
			len(fig.Ratios), fig.Skipped)
	}
	for _, r := range fig.Ratios {
		if r <= 0 {
			t.Errorf("improvement ratio %v should be positive", r)
		}
	}
	// The paper's average is 1.21 ("overall, our algorithm is 21%
	// better"); ours should at least favor Magus on average.
	if fig.Summary.Mean < 0.9 {
		t.Errorf("mean improvement ratio %v, want >= 0.9", fig.Summary.Mean)
	}
	if fig.FractionAtLeastNaive < 0.4 {
		t.Errorf("Magus at least as good as naive in only %v of scenarios",
			fig.FractionAtLeastNaive)
	}
	if !strings.Contains(fig.String(), "Figure 13") {
		t.Error("Figure13 output header missing")
	}
}

func TestFigure2TestbedShape(t *testing.T) {
	fig, err := RunFigure2(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []struct {
		name                   string
		before, upgrade, after float64
	}{
		{"scenario1", fig.Scenario1.UtilityBefore, fig.Scenario1.UtilityUpgrade, fig.Scenario1.UtilityAfter},
		{"scenario2", fig.Scenario2.UtilityBefore, fig.Scenario2.UtilityUpgrade, fig.Scenario2.UtilityAfter},
	} {
		if !(res.before > res.after && res.after >= res.upgrade) {
			t.Errorf("%s: want f(C_before) > f(C_after) >= f(C_upgrade), got %v / %v / %v",
				res.name, res.before, res.after, res.upgrade)
		}
	}
	if !strings.Contains(fig.String(), "Figure 2") {
		t.Error("Figure2 output header missing")
	}
}

func TestCalendarMatchesPaperObservations(t *testing.T) {
	cal := RunCalendar(1)
	if cal.Stats.DaysCovered != cal.Days {
		t.Errorf("upgrades on %d of %d days; paper observes upgrades every day",
			cal.Stats.DaysCovered, cal.Days)
	}
	if cal.Stats.TueFriRatio < 1.8 {
		t.Errorf("Tue-Fri ratio %v, paper observes more than 2x", cal.Stats.TueFriRatio)
	}
	if cal.Stats.MeanDurationHours < 4 || cal.Stats.MeanDurationHours > 6 {
		t.Errorf("mean duration %v h, paper observes 4-6 h", cal.Stats.MeanDurationHours)
	}
	if !strings.Contains(cal.String(), "planned upgrades") {
		t.Error("Calendar output missing")
	}
}

func TestRunMaps(t *testing.T) {
	maps, err := RunMaps(1)
	if err != nil {
		t.Fatal(err)
	}
	if maps.PathLossMinDB >= maps.PathLossMaxDB || maps.PathLossMaxDB >= 0 {
		t.Errorf("path loss range [%v, %v] implausible", maps.PathLossMinDB, maps.PathLossMaxDB)
	}
	// Figure 3's raster spans a wide dynamic range (the paper's spans
	// about 180 dB over 60 km; our smaller region still spans > 40 dB).
	if maps.PathLossMaxDB-maps.PathLossMinDB < 40 {
		t.Errorf("path loss dynamic range only %v dB", maps.PathLossMaxDB-maps.PathLossMinDB)
	}
	if maps.ServedFraction <= 0.3 || maps.ServedFraction > 1 {
		t.Errorf("served fraction %v implausible", maps.ServedFraction)
	}
	for _, s := range []string{maps.PathLossASCII, maps.CoverageASCII, maps.TuningComparison} {
		if len(s) < 100 {
			t.Error("map rendering suspiciously short")
		}
	}
	if !strings.Contains(maps.String(), "Figure 3") {
		t.Error("Maps output header missing")
	}
}

func TestUpgradeScenarioTargetCounts(t *testing.T) {
	e, err := BuildEngine(1, DefaultAreaSpec(topology.Suburban))
	if err != nil {
		t.Fatal(err)
	}
	want := map[upgrade.Scenario]int{
		upgrade.SingleSector: 1,
		upgrade.FullSite:     3,
		upgrade.FourCorners:  4,
	}
	for sc, n := range want {
		targets, err := upgrade.Targets(e.Net, sc, e.TuningArea())
		if err != nil {
			t.Fatal(err)
		}
		if len(targets) != n {
			t.Errorf("%v: %d targets, want %d", sc, len(targets), n)
		}
	}
}
