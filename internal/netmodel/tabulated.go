// Tabulated per-tilt link budgets: the in-memory analogue of the
// paper's Atoll path-loss matrices, which exist per discrete tilt
// setting rather than as an analytic antenna pattern. A sector with an
// installed table answers entryLinkDB from the table — exact at the
// tabulated settings, linearly interpolated in tilt between them —
// while sectors without one keep the analytic pattern path untouched.
// This is what lets operational (possibly repaired) matrix data replace
// the synthetic link budget sector by sector.

package netmodel

import (
	"fmt"
	"sort"
)

// SectorCells returns the grid-cell indices covered by sector b's
// contributor entries, in entry order — the row layout SampleLinkDB
// and InstallLinkTable share.
func (m *Model) SectorCells(b int) []int {
	refs := m.core.sectorEntries[b]
	cells := make([]int, len(refs))
	for i, ref := range refs {
		cells[i] = int(ref.Grid)
	}
	return cells
}

// SampleLinkDB tabulates sector b's link budget over SectorCells(b) at
// each tilt setting, from whatever source currently answers entryLinkDB
// (analytic pattern or an installed table). Row t corresponds to
// settings[t].
func (m *Model) SampleLinkDB(b int, settings []float64) [][]float64 {
	refs := m.core.sectorEntries[b]
	rows := make([][]float64, len(settings))
	for t, tilt := range settings {
		row := make([]float64, len(refs))
		for i, ref := range refs {
			row[i] = m.entryLinkDB(int(ref.Pos), tilt)
		}
		rows[t] = row
	}
	return rows
}

// InstallLinkTable replaces sector b's analytic link budget with a
// tabulated per-tilt table: linkDB holds one row per tilt setting
// (ascending degrees) over cells (grid indices, as from SectorCells).
// Cells the sector's contributor entries do not cover are ignored;
// entries absent from cells keep the analytic path. States built before
// the install keep their cached link budgets — build (or refresh) states
// afterwards.
func (m *Model) InstallLinkTable(b int, settings []float64, cells []int, linkDB [][]float64) error {
	if b < 0 || b >= len(m.core.sectorEntries) {
		return fmt.Errorf("netmodel: no sector %d", b)
	}
	if len(settings) == 0 {
		return fmt.Errorf("netmodel: sector %d: no tilt settings", b)
	}
	for i := 1; i < len(settings); i++ {
		if !(settings[i] > settings[i-1]) {
			return fmt.Errorf("netmodel: sector %d: tilt settings not ascending", b)
		}
	}
	if len(linkDB) != len(settings) {
		return fmt.Errorf("netmodel: sector %d: %d matrix rows for %d tilt settings", b, len(linkDB), len(settings))
	}
	for t, row := range linkDB {
		if len(row) != len(cells) {
			return fmt.Errorf("netmodel: sector %d: row %d has %d cells, want %d", b, t, len(row), len(cells))
		}
	}

	// Column lookup: grid index -> position in the cells slice.
	col := make(map[int]int, len(cells))
	for i, g := range cells {
		col[g] = i
	}

	if m.entryCurve == nil {
		m.entryCurve = make([][]float64, len(m.core.contribSector))
	}
	if m.curveSettings == nil {
		m.curveSettings = make([][]float64, len(m.core.sectorEntries))
	}
	m.curveSettings[b] = append([]float64(nil), settings...)
	for _, ref := range m.core.sectorEntries[b] {
		c, ok := col[int(ref.Grid)]
		if !ok {
			m.entryCurve[ref.Pos] = nil // stays analytic
			continue
		}
		curve := make([]float64, len(settings))
		for t := range settings {
			curve[t] = linkDB[t][c]
		}
		m.entryCurve[ref.Pos] = curve
	}
	return nil
}

// HasLinkTable reports whether sector b's link budget is tabulated.
func (m *Model) HasLinkTable(b int) bool {
	return m.curveSettings != nil && b >= 0 && b < len(m.curveSettings) && m.curveSettings[b] != nil
}

// SetUsers replaces the model's UE density grid (and resets any uniform
// ScaleUsers factor: the installed density IS the distribution). States
// over m must call RecomputeLoads (or be rebuilt) afterwards.
func (m *Model) SetUsers(ue []float64) error {
	if len(ue) != len(m.ue) {
		return fmt.Errorf("netmodel: density grid has %d cells, model has %d", len(ue), len(m.ue))
	}
	total := 0.0
	for _, v := range ue {
		total += v
	}
	copy(m.ue, ue)
	m.ueFactor = 1
	m.totalUE = total
	return nil
}

// interpCurve evaluates a tabulated tilt curve: exact at the tabulated
// settings (bit-identical to the stored value — determinism of
// sanitized-clean roundtrips depends on it), linear in tilt between
// them, clamped at the ends.
func interpCurve(settings, curve []float64, tilt float64) float64 {
	n := len(settings)
	if tilt <= settings[0] {
		return curve[0]
	}
	if tilt >= settings[n-1] {
		return curve[n-1]
	}
	i := sort.SearchFloat64s(settings, tilt)
	if settings[i] == tilt {
		return curve[i]
	}
	x0, x1 := settings[i-1], settings[i]
	frac := (tilt - x0) / (x1 - x0)
	return curve[i-1] + frac*(curve[i]-curve[i-1])
}
