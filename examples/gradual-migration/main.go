// Gradual migration: the paper's Section 6 workflow. A full three-sector
// site goes down for maintenance; instead of retuning everything in one
// synchronized step (which stampedes every displaced user onto the
// neighbors at once, many as hard handovers from a dead cell), Magus
// walks the target's power down step by step, compensating with the
// neighbors whenever the predicted utility would fall below f(C_after).
//
//	go run ./examples/gradual-migration
package main

import (
	"fmt"
	"log"
	"strings"

	"magus"
)

func main() {
	engine, err := magus.NewEngine(magus.SetupConfig{
		Seed:        11,
		Class:       magus.Suburban,
		RegionSpanM: 7200,
		CellSizeM:   200,
	})
	if err != nil {
		log.Fatal(err)
	}

	plan, err := engine.Mitigate(magus.FullSite, magus.Joint, magus.Performance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upgrading all %d sectors of the central site; recovery %.1f%%\n",
		len(plan.Targets), 100*plan.RecoveryRatio())

	gradual, err := plan.GradualMigration(magus.MigrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	oneShot, err := plan.OneShotMigration(magus.MigrationOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\none-shot:  %4.0f simultaneous handovers, %5.1f%% seamless\n",
		oneShot.MaxSimultaneousHandovers, 100*oneShot.SeamlessFraction())
	fmt.Printf("gradual:   %4.0f max per step,           %5.1f%% seamless (%d steps)\n",
		gradual.MaxSimultaneousHandovers, 100*gradual.SeamlessFraction(), len(gradual.Steps))
	if gradual.MaxSimultaneousHandovers > 0 {
		fmt.Printf("burst reduction: %.1fx\n",
			oneShot.MaxSimultaneousHandovers/gradual.MaxSimultaneousHandovers)
	}

	fmt.Printf("\nschedule (utility floor f(C_after) = %.1f):\n", gradual.AfterUtility)
	maxHO := gradual.MaxSimultaneousHandovers
	if maxHO == 0 {
		maxHO = 1
	}
	for i, step := range gradual.Steps {
		bar := strings.Repeat("#", int(step.Handovers/maxHO*30))
		mark := ""
		if step.UpgradeStep {
			mark = " <- site off-air"
		}
		fmt.Printf("  step %2d  utility %9.1f  handovers %4.0f %-30s%s\n",
			i+1, step.Utility, step.Handovers, bar, mark)
	}
}
