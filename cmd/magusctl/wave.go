// The wave subcommand: plan a whole upgrade season against a running
// magusd. `plan` submits the season (market, calendar constraints,
// optional replay drill) and polls until the scheduler finishes,
// rendering each wave's sectors, semantics and exact f(C_after);
// `status` re-polls an already-submitted season by ID.
//
//	magusctl wave plan   [-server http://localhost:8080] [-class suburban] [-seed 1]
//	                     [-crews 4] [-max-waves 0] [-blackout 0,2] [-overlap 0.15]
//	                     [-replay] [-faults "sector-down@2:17"] [-halt-below 3]
//	magusctl wave status -id <id> [-server ...]
//
// Exits 0 only when the season completes without a halt; a halted
// season (floor breach during replay) prints the rollback summary and
// exits 2, matching the scheduler's stop-and-unwind contract.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// waveSpecBody mirrors campaign.WaveSpec's wire form.
type waveSpecBody struct {
	CrewsPerWave     int     `json:"crews_per_wave,omitempty"`
	MaxWaves         int     `json:"max_waves,omitempty"`
	Blackout         []int   `json:"blackout,omitempty"`
	OverlapThreshold float64 `json:"overlap_threshold,omitempty"`
	MarginDB         float64 `json:"margin_db,omitempty"`
	AnnealIters      int     `json:"anneal_iters,omitempty"`
	RollingRecovery  float64 `json:"rolling_recovery,omitempty"`
	Replay           bool    `json:"replay,omitempty"`
	ReplayTicks      int     `json:"replay_ticks,omitempty"`
	Faults           string  `json:"faults,omitempty"`
	HaltBelowTicks   int     `json:"halt_below_ticks,omitempty"`
}

// waveView is the subset of GET /waves/{id} the client renders.
type waveView struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Finished  bool   `json:"finished"`
	Cancelled bool   `json:"cancelled"`
	Error     string `json:"error"`
	Season    *struct {
		Sectors     []int `json:"sectors"`
		Constraints struct {
			CrewsPerWave int `json:"crews_per_wave"`
			MaxWaves     int `json:"max_waves"`
		} `json:"constraints"`
		Method            string  `json:"method"`
		Objective         string  `json:"objective"`
		UtilityBefore     float64 `json:"utility_before"`
		ConflictEdges     int     `json:"conflict_edges"`
		MaxConflictDegree int     `json:"max_conflict_degree"`
		MinWaveUtility    float64 `json:"min_wave_utility"`
		MeanWaveUtility   float64 `json:"mean_wave_utility"`
		TotalHandovers    float64 `json:"total_handovers"`
		Halted            bool    `json:"halted"`
		HaltWave          int     `json:"halt_wave"`
		HaltReason        string  `json:"halt_reason"`
		Waves             []struct {
			Wave         int     `json:"wave"`
			Slot         int     `json:"slot"`
			Sectors      []int   `json:"sectors"`
			Semantics    string  `json:"semantics"`
			UtilityAfter float64 `json:"utility_after"`
			Recovery     float64 `json:"recovery"`
			Handovers    float64 `json:"handovers"`
			Halted       bool    `json:"halted"`
			Cancelled    bool    `json:"cancelled"`
		} `json:"waves"`
		Rollback *struct {
			Title string `json:"title"`
			Steps []struct {
				Index int `json:"index"`
			} `json:"steps"`
		} `json:"rollback"`
	} `json:"season"`
}

func runWave(args []string) {
	if len(args) < 1 {
		fail("usage: magusctl wave <plan|status> [flags]")
	}
	verb := args[0]
	fs := flag.NewFlagSet("magusctl wave "+verb, flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "magusd base URL")
	poll := fs.Duration("poll", 500*time.Millisecond, "status poll interval")
	retries := fs.Int("retries", 3, "attempts per request when the server is draining or unreachable")
	retryBackoff := fs.Duration("retry-backoff", 500*time.Millisecond, "initial retry delay (doubles per attempt, jittered)")

	// plan flags
	classFlag := fs.String("class", "suburban", "area class: rural, suburban, urban")
	seed := fs.Int64("seed", 1, "market seed")
	method := fs.String("method", "joint", "per-wave tuning method: power, tilt, joint, naive, anneal")
	utilFlag := fs.String("utility", "performance", "objective: performance, coverage")
	workers := fs.Int("workers", 0, "per-wave in-search scoring parallelism (0 = server default)")
	fixed := fs.Bool("fixed", false, "score anneal candidates on the batched fixed-point path")
	annealSeed := fs.Int64("anneal-seed", 0, "scheduler seed; equal seeds reproduce the season bit-identically (0 = default)")
	jobTimeout := fs.Duration("timeout", 0, "season deadline (0 uses the server default)")
	crews := fs.Int("crews", 0, "field crews per wave = max sectors darkened together (0 = default)")
	maxWaves := fs.Int("max-waves", 0, "calendar length in wave slots (0 sizes automatically)")
	blackout := fs.String("blackout", "", "comma-separated blackout slots, e.g. 0,2")
	overlap := fs.Float64("overlap", 0, "coverage overlap fraction above which sectors may not share a wave (0 = default)")
	margin := fs.Float64("margin", 0, "conflict-graph coverage margin in dB (0 = default)")
	annealIters := fs.Int("anneal-iters", 0, "wave-assignment anneal iterations (0 = default)")
	rolling := fs.Float64("rolling-recovery", 0, "recovery ratio at or above which a wave is rolling (0 = default)")
	replay := fs.Bool("replay", false, "replay each wave's runbook through the window simulator before committing")
	replayTicks := fs.Int("replay-ticks", 0, "replay window length (0 = simulator default)")
	faults := fs.String("faults", "", `fault script injected into every replay, e.g. "sector-down@2:17"`)
	haltBelow := fs.Int("halt-below", 0, "consecutive below-floor replay ticks that halt the season (0 = default)")

	// status flags
	id := fs.String("id", "", "season ID to poll (required for status)")
	_ = fs.Parse(args[1:])
	r := newRetrier(*retries, *retryBackoff)

	switch verb {
	case "plan":
		spec := waveSpecBody{
			CrewsPerWave:     *crews,
			MaxWaves:         *maxWaves,
			OverlapThreshold: *overlap,
			MarginDB:         *margin,
			AnnealIters:      *annealIters,
			RollingRecovery:  *rolling,
			Replay:           *replay,
			ReplayTicks:      *replayTicks,
			Faults:           *faults,
			HaltBelowTicks:   *haltBelow,
		}
		if *blackout != "" {
			for _, s := range strings.Split(*blackout, ",") {
				slot, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					fail("bad blackout slot %q", s)
				}
				spec.Blackout = append(spec.Blackout, slot)
			}
		}
		body, err := json.Marshal(map[string]any{
			"class": *classFlag, "seed": *seed, "method": *method, "utility": *utilFlag,
			"workers": *workers, "fixed_point": *fixed, "anneal_seed": *annealSeed,
			"timeout_ms": int64(*jobTimeout / time.Millisecond), "wave": spec,
		})
		if err != nil {
			fail("encode: %v", err)
		}
		resp := r.do("wave plan", func() (*http.Response, error) {
			return http.Post(*server+"/waves", "application/json", bytes.NewReader(body))
		})
		if resp.StatusCode != http.StatusAccepted {
			fail("wave plan rejected (%d): %s", resp.StatusCode, readAPIError(resp))
		}
		var accepted struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&accepted)
		resp.Body.Close()
		if err != nil {
			fail("wave plan: decode: %v", err)
		}
		fmt.Printf("season %s accepted\n", accepted.ID)
		waveWait(r, *server, accepted.ID, *poll)
	case "status":
		if *id == "" {
			fail("wave status: -id is required")
		}
		view := waveFetch(r, *server, *id)
		waveRender(view)
	default:
		fail("unknown wave subcommand %q (want plan or status)", verb)
	}
}

// waveFetch polls GET /waves/{id} once.
func waveFetch(r *retrier, server, id string) waveView {
	resp := r.do("wave status", func() (*http.Response, error) {
		return http.Get(server + "/waves/" + id)
	})
	if resp.StatusCode != http.StatusOK {
		fail("wave status (%d): %s", resp.StatusCode, readAPIError(resp))
	}
	var view waveView
	err := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		fail("wave status: decode: %v", err)
	}
	return view
}

// waveWait polls until the season's campaign finishes, then renders it.
func waveWait(r *retrier, server, id string, poll time.Duration) {
	for {
		view := waveFetch(r, server, id)
		if view.Finished {
			waveRender(view)
			return
		}
		fmt.Printf("  state %s...\n", view.State)
		time.Sleep(poll)
	}
}

// waveRender prints the season and exits non-zero on failure or halt.
func waveRender(view waveView) {
	if view.Error != "" {
		fail("season %s failed: %s", view.ID, view.Error)
	}
	if view.Season == nil {
		fmt.Printf("season %s: state %s (no result yet)\n", view.ID, view.State)
		if view.Cancelled {
			fail("season %s was cancelled", view.ID)
		}
		return
	}
	se := view.Season
	fmt.Printf("season %s: %d sectors in %d waves (calendar %d slots, %d crews/wave)\n",
		view.ID, len(se.Sectors), len(se.Waves), se.Constraints.MaxWaves, se.Constraints.CrewsPerWave)
	fmt.Printf("  conflict graph: %d edges, max degree %d\n", se.ConflictEdges, se.MaxConflictDegree)
	fmt.Printf("  objective %s via %s: f(C_before) %.1f, season min f(C_after) %.1f (mean %.1f), %.0f handovers\n",
		se.Objective, se.Method, se.UtilityBefore, se.MinWaveUtility, se.MeanWaveUtility, se.TotalHandovers)
	fmt.Printf("\n%-5s %-5s %-10s %10s %9s %9s  %s\n",
		"wave", "slot", "state", "f(after)", "recovery", "handover", "sectors")
	for _, w := range se.Waves {
		state := w.Semantics
		switch {
		case w.Cancelled:
			state = "CANCELLED"
		case w.Halted:
			state = "HALTED"
		}
		after, rec, ho := "", "", ""
		if !w.Cancelled {
			after = fmt.Sprintf("%10.1f", w.UtilityAfter)
			rec = fmt.Sprintf("%8.1f%%", 100*w.Recovery)
			ho = fmt.Sprintf("%9.0f", w.Handovers)
		}
		fmt.Printf("%-5d %-5d %-10s %10s %9s %9s  %v\n",
			w.Wave, w.Slot, state, after, rec, ho, w.Sectors)
	}
	if se.Halted {
		steps := 0
		if se.Rollback != nil {
			steps = len(se.Rollback.Steps)
		}
		fail("season halted at wave %d: %s (rollback runbook: %d steps)",
			se.HaltWave, se.HaltReason, steps)
	}
	fmt.Println("\nseason completes without a halt")
}
