package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := map[string]time.Duration{
		"1":                             time.Second,
		"7":                             7 * time.Second,
		"0":                             0,
		"-2":                            0,
		"":                              0,
		"soon":                          0,
		"Wed, 21 Oct 2026 07:28:00 GMT": 0,
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestRetrierHonorsRetryAfter serves one 503 with a Retry-After hint
// larger than the configured backoff and checks the retrier waits the
// hinted second rather than its own 10ms schedule.
func TestRetrierHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	r := newRetrier(3, 10*time.Millisecond)
	start := time.Now()
	resp := r.do("test", func() (*http.Response, error) { return http.Get(srv.URL) })
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d, want 200", resp.StatusCode)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retried after %v; the 1s Retry-After hint should set the wait", elapsed)
	}
}
