// Package search implements the configuration search component of Magus
// (Section 5): Algorithm 1, the heuristic iterative power-tuning search;
// the greedy per-neighbor tilt search; joint tilt-then-power tuning; the
// naive per-neighbor power baseline the paper compares against in Figure
// 13; and exhaustive search for small instances.
//
// All searches mutate a working netmodel.State in place toward C_after
// and report a trace of accepted tuning steps together with the number
// of candidate evaluations performed (each evaluation is one "what-if"
// invocation of the analysis model, the quantity that makes brute force
// intractable: "10 sectors x 5 power units is over 9 million
// configurations", Section 5).
//
// Every strategy is a thin proposer/acceptor over evalengine.Engine,
// which owns candidate scoring. With Options.Workers <= 1 scoring is
// sequential and exact — bit-identical to the historical hand-rolled
// loops, as the golden-equivalence tests verify. With Workers > 1
// candidates are scored concurrently on a pool of worker-local state
// clones using speculative delta evaluation; accepted configurations may
// then differ from the sequential run by floating-point rounding near
// accept thresholds (never in validity, and committed utilities are
// always exact re-evaluations). See evalengine's package comment.
package search

import (
	"context"
	"fmt"
	"sort"

	"magus/internal/config"
	"magus/internal/evalengine"
	"magus/internal/netmodel"
	"magus/internal/utility"
)

// Step is one accepted tuning move.
type Step struct {
	// Change is the applied configuration change.
	Change config.Change
	// Utility is the overall utility after applying the change. In
	// parallel runs intermediate utilities inside one accepted batch are
	// speculative (delta-evaluated); the utility after each commit is
	// exact.
	Utility float64
}

// Result summarizes a search run.
type Result struct {
	// Steps are the accepted tuning moves in order.
	Steps []Step
	// Evaluations counts candidate what-if evaluations of the model.
	Evaluations int
	// FinalUtility is the overall utility of the final configuration.
	FinalUtility float64
	// Recovered reports whether every degraded grid was restored to its
	// baseline rate (power search only; false otherwise).
	Recovered bool
	// Stats are the evaluation engine's instrumentation counters for
	// this run (moves proposed/accepted, delta vs full evaluations,
	// parallel batches and worker utilization).
	Stats evalengine.StatsSnapshot
}

// Options tune the search behaviour. The zero value uses defaults.
type Options struct {
	// Util is the optimization objective (default utility.Performance).
	Util utility.Func
	// MaxSteps caps accepted tuning moves (default 100).
	MaxSteps int
	// PowerUnitDB is the initial power tuning unit T (default 1 dB,
	// the paper's unit).
	PowerUnitDB float64
	// MaxPowerUnitDB is the largest unit T may grow to when no candidate
	// improves any grid (default 6 dB).
	MaxPowerUnitDB float64
	// TiltUnit is the tilt-index step used by Equalize's move set
	// (default 1).
	TiltUnit int
	// CapAtDefaultPower restricts power increases to each sector's
	// planner default (used by Equalize: operators reserve the hardware
	// headroom above the planned power for emergencies, which is exactly
	// the room Magus's mitigation spends).
	CapAtDefaultPower bool
	// CapUtility, when positive, stops a search once the overall
	// utility reaches it. Mitigation callers set it to f(C_before): the
	// objective is recovery of the upgrade-induced loss, not open-ended
	// optimization, so Formula 7 ratios stay within [0, 1].
	CapUtility float64
	// NoPruning disables Algorithm 1's candidate filter (the set β of
	// sectors that improve at least one degraded grid's SINR) and
	// evaluates every neighbor at each iteration instead. Provided for
	// the ablation benchmarks: it quantifies how much work the paper's
	// "conditionally good" pruning saves.
	NoPruning bool
	// Workers sets the engine's candidate-scoring parallelism: the
	// number of worker-local state clones used per batch. 0 or 1 keeps
	// the sequential exact path; values above 1 trade bit-exact
	// reproducibility for wall-clock speed (see the package comment).
	Workers int
	// FixedPoint routes candidate scoring through the engine's batched
	// quantized path: workers share one state read-only (no clone pool)
	// and the inner loop runs in int16 centi-dB with table-driven
	// dB→linear conversion. Scores carry ≤0.1% utility quantization
	// error; committed utilities are still exact. Combine with Workers
	// for the fastest scoring configuration.
	FixedPoint bool
	// Ctx, when non-nil, lets the caller abandon a long-running search:
	// every outer iteration checks it and the search returns Ctx's error
	// with the state left at the last committed configuration. A nil Ctx
	// means the search runs to completion.
	Ctx context.Context
}

// cancelled reports the context error once the caller's context is done.
func (o *Options) cancelled() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

func (o *Options) applyDefaults() {
	if o.Util.U == nil {
		o.Util = utility.Performance
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 100
	}
	if o.PowerUnitDB <= 0 {
		o.PowerUnitDB = 1
	}
	if o.MaxPowerUnitDB <= 0 {
		o.MaxPowerUnitDB = 6
	}
	if o.TiltUnit <= 0 {
		o.TiltUnit = 1
	}
}

// engine builds the evaluation engine for one search run.
func (o *Options) engine(st *netmodel.State) *evalengine.Engine {
	return evalengine.New(st, o.Util, evalengine.Config{Workers: o.Workers, FixedPoint: o.FixedPoint, Ctx: o.Ctx})
}

// SortByDistanceTo orders sector IDs by the distance of their sites to
// the nearest of the target sectors, closest first — the neighbor
// ordering used by the greedy searches.
func SortByDistanceTo(st *netmodel.State, neighbors []int, targets []int) []int {
	net := st.Model.Net
	out := append([]int(nil), neighbors...)
	dist := func(b int) float64 {
		best := -1.0
		for _, t := range targets {
			d := net.Sectors[b].Pos.DistanceTo(net.Sectors[t].Pos)
			if best < 0 || d < best {
				best = d
			}
		}
		return best
	}
	sort.SliceStable(out, func(i, j int) bool { return dist(out[i]) < dist(out[j]) })
	return out
}

// Power runs Algorithm 1: iterative heuristic power tuning of the
// neighbor set. st must be at C_upgrade (targets already off); base is
// the C_before state used to identify degraded grids. st is mutated to
// C_after.
func Power(st *netmodel.State, base *netmodel.State, neighbors []int, opts Options) (*Result, error) {
	opts.applyDefaults()
	if st.Model != base.Model {
		return nil, fmt.Errorf("search: state and base use different models")
	}
	e := opts.engine(st)
	res, err := powerPhase(e, base, neighbors, &opts)
	if err != nil {
		return nil, err
	}
	res.FinalUtility = e.Current()
	res.Stats = e.Snapshot()
	return res, nil
}

// powerPhase is Algorithm 1's loop over one engine. It fills a fresh
// phase-local Result (Joint runs several phases on one engine, each with
// its own MaxSteps budget, exactly like the historical per-call limits).
func powerPhase(e *evalengine.Engine, base *netmodel.State, neighbors []int, opts *Options) (*Result, error) {
	st := e.State()
	res := &Result{}
	unit := opts.PowerUnitDB

	// base is typically an engine's shared C_before: evaluate it with the
	// read-only path so concurrent searches on one engine do not race on
	// its utility memo.
	baseUtility := base.UtilityRead(opts.Util)
	if opts.CapUtility > 0 && opts.CapUtility < baseUtility {
		baseUtility = opts.CapUtility
	}
	for len(res.Steps) < opts.MaxSteps {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		if e.Current() >= baseUtility {
			// The upgrade-induced loss is fully recovered; mitigation's
			// objective ("recover the loss in service performance which
			// would have occurred") is met.
			res.Recovered = true
			break
		}
		affected := st.DegradedGrids(base)
		if len(affected) == 0 {
			res.Recovered = true
			break
		}
		// Line 2-8 of Algorithm 1: collect β, the sectors whose power-up
		// by T units improves at least one affected grid.
		var beta []int
		if opts.NoPruning {
			for _, b := range neighbors {
				if !st.Cfg.Off(b) && !st.Cfg.AtMaxPower(b) {
					beta = append(beta, b)
				}
			}
		} else {
			beta = st.SINRImprovers(affected, neighbors, unit)
		}
		if len(beta) == 0 {
			// Increment the tuning unit T, as the algorithm prescribes.
			unit += opts.PowerUnitDB
			if unit > opts.MaxPowerUnitDB {
				break
			}
			continue
		}
		// Line 9: evaluate each candidate globally and keep the best.
		// The batch goes to the engine as one scoring round — the main
		// parallelism win: every β member scores concurrently. Ties keep
		// the earliest candidate, which is what the sequential argmax did.
		moves := make([]config.Change, len(beta))
		for i, b := range beta {
			moves[i] = config.Change{Sector: b, PowerDelta: unit}
		}
		scores, err := e.ScoreAll(moves)
		if err != nil {
			return nil, err
		}
		bestIdx := -1
		bestUtility := e.Current()
		for i, sc := range scores {
			if sc.Applied.PowerDelta == 0 {
				continue
			}
			res.Evaluations++
			if sc.Utility > bestUtility {
				bestUtility = sc.Utility
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			// No candidate improves the overall utility at this tuning
			// unit: grow T and retry ("increment T if needed"); only
			// when the largest unit also fails does the search stop.
			unit += opts.PowerUnitDB
			if unit > opts.MaxPowerUnitDB {
				break
			}
			continue
		}
		// Lines 10-12: commit the best change and continue. Commit
		// re-evaluates exactly, so the recorded utility is never
		// speculative.
		applied, current, err := e.Commit(moves[bestIdx])
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, Step{Change: applied, Utility: current})
	}
	return res, nil
}

// NaivePower is the baseline the paper compares Algorithm 1 against
// (Figure 13): visit neighbors in order (closest to the target first)
// and increase each one's power 1 dB at a time until the overall utility
// worsens, then move to the next neighbor.
func NaivePower(st *netmodel.State, neighbors []int, opts Options) (*Result, error) {
	opts.applyDefaults()
	e := opts.engine(st)
	res, err := climbPhase(e, neighbors, &opts, config.Change{PowerDelta: opts.PowerUnitDB})
	if err != nil {
		return nil, err
	}
	res.FinalUtility = e.Current()
	res.Stats = e.Snapshot()
	return res, nil
}

// Tilt runs the paper's greedy tilt search: uptilt the first neighbor
// step by step until the utility worsens, then the second, and so on.
func Tilt(st *netmodel.State, neighbors []int, opts Options) (*Result, error) {
	opts.applyDefaults()
	e := opts.engine(st)
	res, err := climbPhase(e, neighbors, &opts, config.Change{TiltDelta: -1})
	if err != nil {
		return nil, err
	}
	res.FinalUtility = e.Current()
	res.Stats = e.Snapshot()
	return res, nil
}

// climbPhase is the greedy per-neighbor hill climb shared by Tilt and
// NaivePower: push one knob (unit, a single-step power or tilt move)
// while the utility strictly improves, then move to the next neighbor.
func climbPhase(e *evalengine.Engine, neighbors []int, opts *Options, unit config.Change) (*Result, error) {
	st := e.State()
	res := &Result{}
	for _, b := range neighbors {
		if err := opts.cancelled(); err != nil {
			return nil, err
		}
		if st.Cfg.Off(b) {
			continue
		}
		if opts.CapUtility > 0 && e.Current() >= opts.CapUtility {
			break
		}
		if e.Parallel() {
			if err := climbBatch(e, b, opts, res, unit); err != nil {
				return nil, err
			}
			continue
		}
		for len(res.Steps) < opts.MaxSteps {
			mv := unit
			mv.Sector = b
			applied, u, err := e.Try(mv)
			if err != nil {
				return nil, err
			}
			if applied.IsZero() {
				break // knob range exhausted
			}
			res.Evaluations++
			if u <= e.Current() {
				// Worsened (or flat): undo and move on.
				if err := e.Undo(); err != nil {
					return nil, err
				}
				break
			}
			e.Keep(u)
			res.Steps = append(res.Steps, Step{Change: applied, Utility: u})
		}
	}
	return res, nil
}

// climbBatch is the parallel variant of one neighbor's hill climb: score
// the cumulative 1-step, 2-step, ..., K-step moves as one batch, accept
// the longest strictly improving prefix, commit it as a single change,
// and keep climbing while full batches are accepted.
func climbBatch(e *evalengine.Engine, b int, opts *Options, res *Result, unit config.Change) error {
	for len(res.Steps) < opts.MaxSteps {
		k := e.Workers()
		if rem := opts.MaxSteps - len(res.Steps); k > rem {
			k = rem
		}
		moves := make([]config.Change, k)
		for j := 0; j < k; j++ {
			moves[j] = config.Change{
				Sector:     b,
				PowerDelta: unit.PowerDelta * float64(j+1),
				TiltDelta:  unit.TiltDelta * (j + 1),
			}
		}
		scores, err := e.ScoreAll(moves)
		if err != nil {
			return err
		}
		accept := 0
		prevU := e.Current()
		var prevApplied config.Change
		for j := 0; j < k; j++ {
			sc := scores[j]
			if sc.Applied.IsZero() || (j > 0 && sc.Applied == prevApplied) {
				break // knob range exhausted at this depth
			}
			res.Evaluations++
			if sc.Utility <= prevU {
				break
			}
			// Record the per-step trace the sequential climb would have
			// produced; the deltas between consecutive cumulative applied
			// changes handle a partially clamped last step.
			res.Steps = append(res.Steps, Step{
				Change: config.Change{
					Sector:     b,
					PowerDelta: sc.Applied.PowerDelta - prevApplied.PowerDelta,
					TiltDelta:  sc.Applied.TiltDelta - prevApplied.TiltDelta,
				},
				Utility: sc.Utility,
			})
			prevU = sc.Utility
			prevApplied = sc.Applied
			accept = j + 1
		}
		if accept == 0 {
			return nil
		}
		// Commit the accepted prefix as one cumulative change; the exact
		// re-evaluation lands on the last recorded step.
		_, current, err := e.Commit(config.Change{
			Sector:     b,
			PowerDelta: prevApplied.PowerDelta,
			TiltDelta:  prevApplied.TiltDelta,
		})
		if err != nil {
			return err
		}
		res.Steps[len(res.Steps)-1].Utility = current
		if accept < k {
			return nil // the climb found its stopping point mid-batch
		}
	}
	return nil
}

// Joint runs the paper's joint strategy — tilt tuning first, then power
// tuning on the tilted configuration ("first employing tilt-tuning,
// followed by power-tuning", Section 5) — and keeps alternating the two
// phases while they make progress (bounded), since a power change can
// open new profitable tilts and vice versa. All phases share one engine
// (and therefore one clone pool and one set of counters).
func Joint(st *netmodel.State, base *netmodel.State, neighbors []int, opts Options) (*Result, error) {
	opts.applyDefaults()
	if st.Model != base.Model {
		return nil, fmt.Errorf("search: state and base use different models")
	}
	e := opts.engine(st)
	out := &Result{}
	const maxRounds = 3
	for round := 0; round < maxRounds; round++ {
		tiltRes, err := climbPhase(e, neighbors, &opts, config.Change{TiltDelta: -1})
		if err != nil {
			return nil, err
		}
		powerRes, err := powerPhase(e, base, neighbors, &opts)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, tiltRes.Steps...)
		out.Steps = append(out.Steps, powerRes.Steps...)
		out.Evaluations += tiltRes.Evaluations + powerRes.Evaluations
		out.FinalUtility = e.Current()
		out.Recovered = powerRes.Recovered
		if len(tiltRes.Steps) == 0 && len(powerRes.Steps) == 0 {
			break
		}
	}
	out.Stats = e.Snapshot()
	return out, nil
}

// Equalize runs a planner-style coordinate descent over every sector:
// repeatedly try +-PowerUnitDB power moves and +-1 tilt steps on each
// sector, committing any move that improves the overall utility, until a
// full pass makes no progress (or MaxSteps moves were committed).
//
// The paper evaluates against operational configurations produced by
// professional network planning ("radio network planners attempt to
// maximize coverage and minimize interference"); Equalize is the
// synthetic substitute that turns a freshly generated topology's default
// configuration into a locally optimal C_before, so that recovery ratios
// measure genuine upgrade mitigation rather than leftover planning slack.
//
// With Workers > 1 each sector's four moves are scored as one batch and
// only the best improving move commits per sector per pass (the
// sequential pass can accept several moves on one sector back to back);
// later passes pick up the rest, so both variants converge to a fixed
// point of the same move set.
func Equalize(st *netmodel.State, opts Options) (*Result, error) {
	opts.applyDefaults()
	e := opts.engine(st)
	res := &Result{}
	moves := []config.Change{
		{PowerDelta: opts.PowerUnitDB},
		{PowerDelta: -opts.PowerUnitDB},
		{TiltDelta: opts.TiltUnit},
		{TiltDelta: -opts.TiltUnit},
	}
	// skip reports whether a move is barred by the planner-headroom cap.
	skip := func(b int, mv config.Change) bool {
		return opts.CapAtDefaultPower && mv.PowerDelta > 0 &&
			st.Cfg.PowerDbm(b)+mv.PowerDelta > st.Model.Net.Sectors[b].DefaultPowerDbm
	}
	for pass := 0; ; pass++ {
		improvedInPass := false
		for b := 0; b < st.Cfg.NumSectors() && len(res.Steps) < opts.MaxSteps; b++ {
			if err := opts.cancelled(); err != nil {
				return nil, err
			}
			if st.Cfg.Off(b) {
				continue
			}
			if e.Parallel() {
				improved, err := equalizeSectorBatch(e, b, moves, skip, res)
				if err != nil {
					return nil, err
				}
				improvedInPass = improvedInPass || improved
				continue
			}
			for _, mv := range moves {
				mv.Sector = b
				if skip(b, mv) {
					continue
				}
				applied, u, err := e.Try(mv)
				if err != nil {
					return nil, err
				}
				if applied.IsZero() {
					continue
				}
				res.Evaluations++
				if u > e.Current()+1e-12 {
					e.Keep(u)
					res.Steps = append(res.Steps, Step{Change: applied, Utility: u})
					improvedInPass = true
				} else {
					if err := e.Undo(); err != nil {
						return nil, err
					}
				}
			}
		}
		if !improvedInPass || len(res.Steps) >= opts.MaxSteps {
			break
		}
	}
	res.FinalUtility = e.Current()
	res.Stats = e.Snapshot()
	return res, nil
}

// equalizeSectorBatch scores one sector's move set concurrently and
// commits the best improving move, if any.
func equalizeSectorBatch(e *evalengine.Engine, b int, moves []config.Change, skip func(int, config.Change) bool, res *Result) (bool, error) {
	batch := make([]config.Change, 0, len(moves))
	for _, mv := range moves {
		mv.Sector = b
		if skip(b, mv) {
			continue
		}
		batch = append(batch, mv)
	}
	if len(batch) == 0 {
		return false, nil
	}
	scores, err := e.ScoreAll(batch)
	if err != nil {
		return false, err
	}
	bestIdx := -1
	bestU := e.Current()
	for i, sc := range scores {
		if sc.Applied.IsZero() {
			continue
		}
		res.Evaluations++
		if sc.Utility > bestU+1e-12 {
			bestU = sc.Utility
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return false, nil
	}
	applied, current, err := e.Commit(batch[bestIdx])
	if err != nil {
		return false, err
	}
	res.Steps = append(res.Steps, Step{Change: applied, Utility: current})
	return true, nil
}
