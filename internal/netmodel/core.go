// ModelCore: the immutable, shareable half of a Model. The contributor
// arrays, the per-sector entry index, the grid-cell center table and
// (lazily) the fixed-point quantized mirror of the link budgets are
// identical for every engine, worker and simulation fork planning the
// same market, so they live in one reference-counted ModelCore shared
// read-only by all of them. What stays per-Model is small and mutable:
// the UE density, the tabulated link-table overrides, and everything a
// State owns. Memory for a market therefore scales with the number of
// engines only through State, not through the radio substrate.
//
// A core can be backed directly by an on-disk snapshot's bytes (mmap or
// a single file read; see internal/modelcache): the contributor arrays
// then alias the snapshot buffer instead of being materialized, and the
// backing is released when the core is garbage-collected. Cores are
// immutable after construction — only the lazily built derived tables
// (fixed-point mirror) are added, exactly once, under a sync.Once.
package netmodel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"magus/internal/geo"
)

// ModelCore holds the immutable per-market analysis substrate shared by
// every Model (and therefore every State, engine and clone) over the
// same build inputs.
type ModelCore struct {
	// Contributor entries, grouped by grid: entries for grid g occupy
	// positions gridStart[g] .. gridStart[g+1].
	contribSector []int32
	contribBaseDB []float32
	contribElev   []float32
	gridStart     []int32

	// sectorEntries[b] lists every contributor entry owned by sector b,
	// cell-major (ascending grid).
	sectorEntries [][]entryRef

	// cellCenters is the flat per-cell center table, precomputed once so
	// the build loop and the per-cell queries (GridsIn,
	// InterferingSectorCount) skip the div/mod plus float math of
	// Grid.CellCenterIdx per lookup.
	cellCenters []geo.Point

	numCells   int
	numSectors int

	// refs counts the Models currently attached (engines, forks,
	// clones share their parent's Model and are not counted twice).
	// Detach is GC-lazy — a finalizer on each attached Model releases
	// its reference — so the count is an upper bound that converges
	// after collection; it exists for observability (CacheStats,
	// /healthz, fleet heartbeats), not for correctness.
	refs atomic.Int64

	// Snapshot backing. When non-nil the contributor arrays alias
	// backing's bytes; release unmaps/frees them once the core is
	// collected.
	backingBytes int64
	releaseOnce  sync.Once
	release      func()

	// Fixed-point mirror of the link budgets (see fixedpoint.go),
	// built at most once on first use of the quantized fast path.
	fixedOnce sync.Once
	fixed     *fixedCore
}

// NewCore validates and adopts previously built contributor arrays as
// an immutable core for a grid with numCells cells (grid is used for
// the cell-center table) and a network of numSectors sectors. The
// arrays are adopted without copying: the caller must not mutate them
// afterwards. They must have been built from the same inputs the core
// will be used with — the snapshot cache guarantees this by keying
// snapshots on a hash of them; handing mismatched arrays that happen to
// pass the shape checks yields a silently wrong model.
func NewCore(grid *geo.Grid, numSectors int, sector []int32, baseDB, elev []float32, gridStart []int32) (*ModelCore, error) {
	numCells := grid.NumCells()
	if len(gridStart) != numCells+1 {
		return nil, fmt.Errorf("netmodel: snapshot gridStart has %d entries, grid has %d cells", len(gridStart), numCells)
	}
	if gridStart[0] != 0 {
		return nil, fmt.Errorf("netmodel: snapshot gridStart does not begin at 0")
	}
	if len(baseDB) != len(sector) || len(elev) != len(sector) {
		return nil, fmt.Errorf("netmodel: snapshot column lengths disagree: %d/%d/%d",
			len(sector), len(baseDB), len(elev))
	}
	if int(gridStart[numCells]) != len(sector) {
		return nil, fmt.Errorf("netmodel: snapshot gridStart ends at %d, have %d entries",
			gridStart[numCells], len(sector))
	}
	for g := 0; g < numCells; g++ {
		if gridStart[g+1] < gridStart[g] {
			return nil, fmt.Errorf("netmodel: snapshot gridStart decreases at cell %d", g)
		}
	}
	for _, b := range sector {
		if b < 0 || int(b) >= numSectors {
			return nil, fmt.Errorf("netmodel: snapshot references sector %d of %d", b, numSectors)
		}
	}
	core := &ModelCore{
		contribSector: sector,
		contribBaseDB: baseDB,
		contribElev:   elev,
		gridStart:     gridStart,
		numCells:      numCells,
		numSectors:    numSectors,
		cellCenters:   cellCenterTable(grid),
	}
	core.indexSectorEntries()
	return core, nil
}

// newCoreUnchecked adopts arrays the build loop itself just produced
// (already consistent by construction), reusing the cell-center table
// the build already computed.
func newCoreUnchecked(grid *geo.Grid, numSectors int, centers []geo.Point, sector []int32, baseDB, elev []float32, gridStart []int32) *ModelCore {
	core := &ModelCore{
		contribSector: sector,
		contribBaseDB: baseDB,
		contribElev:   elev,
		gridStart:     gridStart,
		numCells:      grid.NumCells(),
		numSectors:    numSectors,
		cellCenters:   centers,
	}
	core.indexSectorEntries()
	return core
}

// cellCenterTable precomputes every cell's center point.
func cellCenterTable(grid *geo.Grid) []geo.Point {
	centers := make([]geo.Point, grid.NumCells())
	for g := range centers {
		centers[g] = grid.CellCenterIdx(g)
	}
	return centers
}

// indexSectorEntries derives the per-sector entry lists from the merged
// contributor arrays, in the same order the historical per-cell append
// produced: cell-major, ascending sector ID within a cell.
func (c *ModelCore) indexSectorEntries() {
	counts := make([]int32, c.numSectors)
	for _, b := range c.contribSector {
		counts[b]++
	}
	c.sectorEntries = make([][]entryRef, c.numSectors)
	for b := range c.sectorEntries {
		c.sectorEntries[b] = make([]entryRef, 0, counts[b])
	}
	for g := 0; g < c.numCells; g++ {
		for pos := c.gridStart[g]; pos < c.gridStart[g+1]; pos++ {
			b := c.contribSector[pos]
			c.sectorEntries[b] = append(c.sectorEntries[b], entryRef{Grid: int32(g), Pos: pos})
		}
	}
}

// SetBacking records that the contributor arrays alias an external
// buffer of the given size (an mmap'd or heap-loaded snapshot) and
// installs the function that releases it. The release runs exactly once,
// when the core is garbage-collected — Models hold their core strongly,
// so no live engine can observe a released backing. Call at most once,
// before the core is shared.
func (c *ModelCore) SetBacking(bytes int64, release func()) {
	c.backingBytes = bytes
	c.release = release
	if release != nil {
		runtime.SetFinalizer(c, func(core *ModelCore) {
			core.releaseOnce.Do(core.release)
		})
	}
}

// NumContributors returns the number of (grid, sector) contributor
// entries in the core.
func (c *ModelCore) NumContributors() int { return len(c.contribSector) }

// NumCells returns the number of grid cells the core was built over.
func (c *ModelCore) NumCells() int { return c.numCells }

// NumSectors returns the sector count the core was built for.
func (c *ModelCore) NumSectors() int { return c.numSectors }

// Refs returns the number of Models currently attached to the core.
// Detach is GC-lazy (see the refs field), so treat this as an
// observability upper bound, not an exact liveness count.
func (c *ModelCore) Refs() int64 { return c.refs.Load() }

// Bytes estimates the resident size of the shared substrate: the
// contributor arrays (or their snapshot backing) plus the derived
// per-sector index and cell-center table. This is the memory N engines
// over one market pay once instead of N times.
func (c *ModelCore) Bytes() int64 {
	arrays := c.backingBytes
	if arrays == 0 {
		arrays = int64(len(c.contribSector))*4 + int64(len(c.contribBaseDB))*4 +
			int64(len(c.contribElev))*4 + int64(len(c.gridStart))*4
	}
	derived := int64(len(c.cellCenters))*16 + int64(len(c.contribSector))*8
	if f := c.fixed; f != nil {
		derived += f.bytes()
	}
	return arrays + derived
}

// attach registers one Model with the core and arranges the GC-lazy
// release of its reference.
func (c *ModelCore) attach(m *Model) {
	c.refs.Add(1)
	runtime.SetFinalizer(m, func(*Model) { c.refs.Add(-1) })
}
