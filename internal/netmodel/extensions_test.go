package netmodel

import (
	"math"
	"testing"

	"magus/internal/config"
	"magus/internal/geo"
	"magus/internal/propagation"
	"magus/internal/terrain"
	"magus/internal/topology"
)

func TestAssignUsersWeighted(t *testing.T) {
	m := testModel(t)
	s := m.NewState(config.New(m.Net))
	// Weight grids in the east half 3x the west half.
	weight := func(g int) float64 {
		if m.Grid.CellCenterIdx(g).X > 0 {
			return 3
		}
		return 1
	}
	s.AssignUsersWeighted(weight)
	if m.TotalUE() <= 0 {
		t.Fatal("no users assigned")
	}
	// Per-sector populations are preserved (same invariant as uniform).
	perSector := m.Net.Params.UEsPerSector
	for b := range m.Net.Sectors {
		if s.ServedGrids(b) > 0 && s.Load(b) > perSector*1.01 {
			t.Fatalf("sector %d load %v exceeds nominal %v", b, s.Load(b), perSector)
		}
	}
	// A sector straddling the boundary puts more users on its east grids.
	east, west := 0.0, 0.0
	for g := 0; g < m.Grid.NumCells(); g++ {
		if m.UE(g) == 0 {
			continue
		}
		if m.Grid.CellCenterIdx(g).X > 0 {
			east += m.UE(g)
		} else {
			west += m.UE(g)
		}
	}
	if east <= west {
		t.Errorf("east weight 3x should attract more users: east=%v west=%v", east, west)
	}
}

func TestAssignUsersWeightedZeroWeightFallsBack(t *testing.T) {
	m := testModel(t)
	s := m.NewState(config.New(m.Net))
	s.AssignUsersWeighted(func(int) float64 { return 0 })
	// All-zero weights: every serving sector falls back to uniform, so
	// the population matches the uniform assignment.
	weighted := m.TotalUE()
	s2 := m.NewState(config.New(m.Net))
	s2.AssignUsersUniform()
	if math.Abs(weighted-m.TotalUE()) > 1e-6 {
		t.Errorf("zero-weight fallback population %v != uniform %v", weighted, m.TotalUE())
	}
}

func TestCopyUsersFrom(t *testing.T) {
	a := testModel(t)
	sa := a.NewState(config.New(a.Net))
	sa.AssignUsersUniform()

	// A second model over the same market with different propagation
	// detail (jitter), same grid.
	spm := propagation.MustNewSPM(2.635e9, nil)
	spm.JitterDB = 4
	spm.JitterSeed = 9
	b := MustNewModel(a.Net, spm, a.Net.Bounds, Params{CellSizeM: 200})
	if err := b.CopyUsersFrom(a); err != nil {
		t.Fatal(err)
	}
	if b.TotalUE() != a.TotalUE() {
		t.Errorf("population differs after copy: %v vs %v", b.TotalUE(), a.TotalUE())
	}
	for g := 0; g < a.Grid.NumCells(); g++ {
		if a.UE(g) != b.UE(g) {
			t.Fatalf("grid %d UE differs after copy", g)
		}
	}
	// Mismatched grids are rejected.
	c := MustNewModel(a.Net, spm, a.Net.Bounds, Params{CellSizeM: 300})
	if err := c.CopyUsersFrom(a); err == nil {
		t.Error("grid mismatch should fail")
	}
}

func TestJitterMaterializesModelError(t *testing.T) {
	net := topology.MustGenerate(topology.GenConfig{
		Seed: 5, Class: topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 4000, 4000),
	})
	clean := propagation.MustNewSPM(2.635e9, nil)
	noisy := propagation.MustNewSPM(2.635e9, nil)
	noisy.JitterDB = 6
	noisy.JitterSeed = 3

	planning := MustNewModel(net, clean, net.Bounds, Params{CellSizeM: 200})
	truth := MustNewModel(net, noisy, net.Bounds, Params{CellSizeM: 200})

	sp := planning.NewState(config.New(net))
	st := truth.NewState(config.New(net))
	differs := 0
	for g := 0; g < planning.Grid.NumCells(); g++ {
		if sp.ServingSector(g) != st.ServingSector(g) ||
			math.Abs(sp.SINRdB(g)-st.SINRdB(g)) > 0.5 {
			differs++
		}
	}
	if differs == 0 {
		t.Error("jittered truth model should diverge from the planning model")
	}
	// Determinism: rebuilding the truth model reproduces it exactly.
	truth2 := MustNewModel(net, noisy, net.Bounds, Params{CellSizeM: 200})
	st2 := truth2.NewState(config.New(net))
	for g := 0; g < truth.Grid.NumCells(); g++ {
		if st.ServingSector(g) != st2.ServingSector(g) {
			t.Fatal("jitter is not deterministic")
		}
	}
}

func TestApproxTiltElevation(t *testing.T) {
	terr := terrain.MustGenerate(terrain.Config{
		Seed:    7,
		Bounds:  geo.NewRectCentered(geo.Point{}, 6000, 6000),
		ReliefM: 500,
	})
	net := topology.MustGenerate(topology.GenConfig{
		Seed: 7, Class: topology.Suburban,
		Bounds: geo.NewRectCentered(geo.Point{}, 4000, 4000),
	})
	spm := propagation.MustNewSPM(2.635e9, terr)
	spm.DiffractionWeight = 0

	exact := MustNewModel(net, spm, net.Bounds, Params{CellSizeM: 200})
	approx := MustNewModel(net, spm, net.Bounds, Params{CellSizeM: 200, ApproxTiltElevation: true})

	se := exact.NewState(config.New(net))
	sa := approx.NewState(config.New(net))
	diff := 0
	for g := 0; g < exact.Grid.NumCells(); g++ {
		if math.Abs(se.SINRdB(g)-sa.SINRdB(g)) > 0.1 {
			diff++
		}
	}
	// With 500 m of relief the terrain-aware elevation angles must
	// change some grids' radio state.
	if diff == 0 {
		t.Error("approximate tilt geometry should differ from exact over rough terrain")
	}
}
