// Package runbook turns a Magus mitigation plan into the artifact a
// network operations center actually executes: an ordered list of
// configuration pushes with the model's expected utility and handover
// volume after each one, plus the rollback sequence that undoes the
// whole migration if the planned work is cancelled. The paper's system
// computes configurations; an operator needs them as a change-management
// document — this package is that last mile.
package runbook

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"magus/internal/config"
	"magus/internal/core"
	"magus/internal/migrate"
)

// StepKind classifies a runbook step.
type StepKind string

// Step kinds.
const (
	// KindMigration is a pre-upgrade gradual-tuning step (target power
	// reduction plus compensations).
	KindMigration StepKind = "migration"
	// KindOffAir is the step in which the target sectors go off-air and
	// the planned work may begin.
	KindOffAir StepKind = "off-air"
)

// Step is one configuration push.
type Step struct {
	Index int      `json:"index"`
	Kind  StepKind `json:"kind"`
	// Changes to push, in order.
	Changes []config.Change `json:"changes"`
	// ExpectedUtility is the model's predicted overall utility after
	// the push.
	ExpectedUtility float64 `json:"expected_utility"`
	// ExpectedHandovers is the predicted number of UEs re-attaching.
	ExpectedHandovers float64 `json:"expected_handovers"`
	// Note carries operator guidance.
	Note string `json:"note,omitempty"`
}

// Runbook is a complete executable mitigation document.
type Runbook struct {
	Title     string `json:"title"`
	Scenario  string `json:"scenario"`
	Method    string `json:"method"`
	Objective string `json:"objective"`
	// Targets are the sectors the planned work takes off-air.
	Targets []int `json:"targets"`
	// TunedSectors are every sector the runbook touches besides the
	// targets.
	TunedSectors []int `json:"tuned_sectors"`
	// Expected utilities and recovery, from the model.
	ExpectedBefore   float64 `json:"expected_before"`
	ExpectedUpgrade  float64 `json:"expected_upgrade"`
	ExpectedAfter    float64 `json:"expected_after"`
	ExpectedRecovery float64 `json:"expected_recovery"`
	// UtilityFloor is the guaranteed minimum utility during migration.
	UtilityFloor float64 `json:"utility_floor"`
	// Steps is the ordered execution sequence.
	Steps []Step `json:"steps"`
	// Rollback undoes every step in reverse order (for a cancelled
	// upgrade).
	Rollback []config.Change `json:"rollback"`
	// StepIntervalSec is the recommended spacing between pushes.
	StepIntervalSec float64 `json:"step_interval_sec"`
}

// Build assembles the runbook for a mitigation plan and its gradual
// migration schedule.
func Build(plan *core.Plan, mig *migrate.Plan) (*Runbook, error) {
	if plan == nil || mig == nil {
		return nil, fmt.Errorf("runbook: nil plan")
	}
	rb := &Runbook{
		Title:            fmt.Sprintf("Planned upgrade mitigation: %s via %s", plan.Scenario, plan.Method),
		Scenario:         plan.Scenario.String(),
		Method:           plan.Method.String(),
		Objective:        plan.Util.Name,
		Targets:          append([]int(nil), plan.Targets...),
		ExpectedBefore:   plan.UtilityBefore,
		ExpectedUpgrade:  plan.UtilityUpgrade,
		ExpectedAfter:    plan.UtilityAfter,
		ExpectedRecovery: plan.RecoveryRatio(),
		UtilityFloor:     mig.AfterUtility,
		StepIntervalSec:  60,
	}

	targetSet := make(map[int]bool, len(plan.Targets))
	for _, tg := range plan.Targets {
		targetSet[tg] = true
	}
	tunedSet := map[int]bool{}
	var applied []config.Change
	for i, ms := range mig.Steps {
		kind := KindMigration
		note := ""
		if ms.UpgradeStep {
			kind = KindOffAir
			note = "targets go off-air; planned work may begin after this push"
		}
		step := Step{
			Index:             i + 1,
			Kind:              kind,
			Changes:           append([]config.Change(nil), ms.Changes...),
			ExpectedUtility:   ms.Utility,
			ExpectedHandovers: ms.Handovers,
			Note:              note,
		}
		rb.Steps = append(rb.Steps, step)
		for _, ch := range ms.Changes {
			applied = append(applied, ch)
			if !targetSet[ch.Sector] {
				tunedSet[ch.Sector] = true
			}
		}
	}
	for s := range tunedSet {
		rb.TunedSectors = append(rb.TunedSectors, s)
	}
	sortInts(rb.TunedSectors)

	// Rollback: inverses in reverse order.
	for i := len(applied) - 1; i >= 0; i-- {
		rb.Rollback = append(rb.Rollback, applied[i].Inverse())
	}
	return rb, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// WriteJSON emits the runbook as indented JSON.
func (r *Runbook) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText emits the runbook as an operator-readable document.
func (r *Runbook) WriteText(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	p("RUNBOOK: %s", r.Title)
	p("objective: %s    expected recovery: %.1f%%", r.Objective, 100*r.ExpectedRecovery)
	p("targets off-air: %v", r.Targets)
	p("sectors tuned:   %v", r.TunedSectors)
	p("expected utility: before %.1f, during work %.1f (floor %.1f), unmitigated %.1f",
		r.ExpectedBefore, r.ExpectedAfter, r.UtilityFloor, r.ExpectedUpgrade)
	p("")
	p("EXECUTION (allow %s between pushes):", time.Duration(r.StepIntervalSec)*time.Second)
	for _, s := range r.Steps {
		p("  step %d [%s]: %d changes, expect utility %.1f, ~%.0f handovers",
			s.Index, s.Kind, len(s.Changes), s.ExpectedUtility, s.ExpectedHandovers)
		for _, ch := range s.Changes {
			p("      push %v", ch)
		}
		if s.Note != "" {
			p("      NOTE: %s", s.Note)
		}
	}
	p("")
	p("ROLLBACK (if the work is cancelled, push in this order):")
	for i, ch := range r.Rollback {
		p("  %2d. %v", i+1, ch)
	}
	return nil
}
