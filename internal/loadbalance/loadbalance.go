// Package loadbalance applies Magus's predictive model to the paper's
// final future-work direction: "or for load-balancing and reducing
// congestion" (Section 8). Instead of reacting to a sector going
// off-air, the same model + configuration-search machinery shifts users
// away from overloaded sectors during normal operation: shrink the hot
// sector's footprint (power down / tilt down) and grow underloaded
// neighbors (power up / tilt up), accepting only moves that reduce the
// load imbalance without sacrificing more than a bounded fraction of the
// overall utility.
package loadbalance

import (
	"fmt"
	"math"

	"magus/internal/config"
	"magus/internal/netmodel"
	"magus/internal/utility"
)

// Options tune the balancing run.
type Options struct {
	// Util is the guard utility (default utility.Performance): moves
	// that would reduce it by more than MaxUtilityLossFrac are rejected.
	Util utility.Func
	// MaxUtilityLossFrac bounds the acceptable utility sacrifice
	// relative to the starting utility (default 0.01).
	MaxUtilityLossFrac float64
	// MaxSteps bounds accepted moves (default 50).
	MaxSteps int
	// TargetImbalance stops the run once maxLoad/meanLoad falls below it
	// (default 1.3).
	TargetImbalance float64
	// NeighborRadiusM bounds the neighbor set around the hot sector
	// (default 1.6 x inter-site distance).
	NeighborRadiusM float64
}

func (o *Options) applyDefaults() {
	if o.Util.U == nil {
		o.Util = utility.Performance
	}
	if o.MaxUtilityLossFrac <= 0 {
		o.MaxUtilityLossFrac = 0.01
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 50
	}
	if o.TargetImbalance <= 0 {
		o.TargetImbalance = 1.3
	}
}

// Step is one accepted balancing move.
type Step struct {
	Change config.Change
	// MaxLoad and Imbalance after the move.
	MaxLoad   float64
	Imbalance float64
}

// Result summarizes a balancing run.
type Result struct {
	Steps []Step
	// Initial/Final load statistics over serving sectors.
	InitialMaxLoad   float64
	FinalMaxLoad     float64
	InitialImbalance float64
	FinalImbalance   float64
	// Initial/Final guard utility.
	InitialUtility float64
	FinalUtility   float64
	// Evaluations counts candidate what-if evaluations.
	Evaluations int
}

// loadStats returns the max load, mean load over serving sectors, and
// the ID of the most loaded on-air sector.
func loadStats(st *netmodel.State) (maxLoad, meanLoad float64, hottest int) {
	hottest = -1
	sum, n := 0.0, 0
	for b := 0; b < st.Cfg.NumSectors(); b++ {
		if st.ServedGrids(b) == 0 || st.Cfg.Off(b) {
			continue
		}
		load := st.Load(b)
		sum += load
		n++
		if load > maxLoad {
			maxLoad = load
			hottest = b
		}
	}
	if n > 0 {
		meanLoad = sum / float64(n)
	}
	return maxLoad, meanLoad, hottest
}

// Imbalance returns maxLoad/meanLoad over serving sectors (1 = perfectly
// balanced; 0 for an empty network).
func Imbalance(st *netmodel.State) float64 {
	maxLoad, meanLoad, _ := loadStats(st)
	if meanLoad == 0 {
		return 0
	}
	return maxLoad / meanLoad
}

// Balance greedily reduces the load imbalance of st in place.
func Balance(st *netmodel.State, opts Options) (*Result, error) {
	opts.applyDefaults()
	radius := opts.NeighborRadiusM
	if radius <= 0 {
		radius = 1.6 * st.Model.Net.Params.InterSiteDistanceM
	}

	res := &Result{InitialUtility: st.Utility(opts.Util)}
	maxLoad, meanLoad, _ := loadStats(st)
	res.InitialMaxLoad = maxLoad
	if meanLoad > 0 {
		res.InitialImbalance = maxLoad / meanLoad
	}
	utilityFloor := res.InitialUtility * (1 - opts.MaxUtilityLossFrac)
	if res.InitialUtility < 0 {
		utilityFloor = res.InitialUtility * (1 + opts.MaxUtilityLossFrac)
	}

	for len(res.Steps) < opts.MaxSteps {
		curMax, curMean, hottest := loadStats(st)
		if hottest < 0 || curMean == 0 || curMax/curMean <= opts.TargetImbalance {
			break
		}

		// Candidate moves: cool the hot sector, grow its cooler
		// neighbors.
		moves := []config.Change{
			{Sector: hottest, PowerDelta: -1},
			{Sector: hottest, TiltDelta: 1}, // downtilt shrinks the footprint
		}
		for _, nb := range st.Model.Net.NeighborSectors([]int{hottest}, radius) {
			if st.Cfg.Off(nb) || st.Load(nb) >= curMean {
				continue
			}
			moves = append(moves,
				config.Change{Sector: nb, PowerDelta: 1},
				config.Change{Sector: nb, TiltDelta: -1},
			)
		}

		// Evaluate each; keep the one that lowers the max load the most
		// while respecting the utility floor.
		bestMove := config.Change{}
		bestMax := curMax
		for _, mv := range moves {
			applied, err := st.Apply(mv)
			if err != nil {
				return nil, err
			}
			if applied.IsZero() {
				continue
			}
			res.Evaluations++
			newMax, _, _ := loadStats(st)
			if newMax < bestMax && st.Utility(opts.Util) >= utilityFloor {
				bestMax = newMax
				bestMove = applied
			}
			if _, err := st.Apply(applied.Inverse()); err != nil {
				return nil, err
			}
		}
		if bestMove.IsZero() {
			break // no acceptable move reduces the hot spot
		}
		if _, err := st.Apply(bestMove); err != nil {
			return nil, err
		}
		newMax, newMean, _ := loadStats(st)
		step := Step{Change: bestMove, MaxLoad: newMax}
		if newMean > 0 {
			step.Imbalance = newMax / newMean
		}
		res.Steps = append(res.Steps, step)
	}

	maxLoad, meanLoad, _ = loadStats(st)
	res.FinalMaxLoad = maxLoad
	if meanLoad > 0 {
		res.FinalImbalance = maxLoad / meanLoad
	}

	res.FinalUtility = st.Utility(opts.Util)
	return res, nil
}

// String summarizes a balancing run.
func (r *Result) String() string {
	return fmt.Sprintf(
		"loadbalance: max load %.1f -> %.1f, imbalance %.2f -> %.2f, utility %.1f -> %.1f (%d steps, %d evaluations)",
		r.InitialMaxLoad, r.FinalMaxLoad, r.InitialImbalance, r.FinalImbalance,
		r.InitialUtility, r.FinalUtility, len(r.Steps), r.Evaluations)
}

// UtilityLossFrac returns the relative guard-utility sacrifice of the
// run.
func (r *Result) UtilityLossFrac() float64 {
	if r.InitialUtility == 0 {
		return 0
	}
	return math.Max(0, (r.InitialUtility-r.FinalUtility)/math.Abs(r.InitialUtility))
}
