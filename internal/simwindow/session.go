package simwindow

import (
	"fmt"
	"math"
	"math/rand"

	"magus/internal/config"
	"magus/internal/geo"
	"magus/internal/netmodel"
	"magus/internal/runbook"
)

// Session is the live, step-driven sibling of Simulator: where Run
// replays a whole window as a batch, a Session hands control of the
// clock and the pushes to a caller — the runbook executor treats one as
// the "real" network, applying each step's changes when (and only when)
// the guarded protocol decides to, and sampling utility against the
// f(C_after) floor between pushes. Load evolution, timed faults
// (sector-down, surge) and the determinism contract are the same as the
// batch simulator's; push-level faults are deliberately NOT handled
// here — they belong to the chaos layer wrapped around the executor's
// network, which owns delivery semantics.
type Session struct {
	cfg Config

	// model is a private fork: load evolution must never leak into the
	// (possibly cached and shared) planning model.
	model *netmodel.Model
	// live is the configuration actually in the field.
	live *netmodel.State
	// afterRef holds the planned C_after; its utility at the current
	// load is the sample's floor.
	afterRef *netmodel.State

	rng       *rand.Rand
	tick      int
	curFactor float64
	timed     []Fault
	timedNext int
	surgeGrid map[int][]int
	active    []surge
	sinceSync int
}

// Sample is one KPI observation of a live session.
type Sample struct {
	// Tick is the session tick the sample was taken at.
	Tick int `json:"tick"`
	// Utility is f(C_live) at the tick's load.
	Utility float64 `json:"utility"`
	// Floor is f(C_after) at the same load — the migration floor.
	Floor float64 `json:"floor"`
	// LoadFactor is the diurnal (plus noise) multiplier in effect.
	LoadFactor float64 `json:"load_factor"`
}

// NewSession prepares a live session of rb starting from base (the
// C_before state the runbook was planned against). base and its model
// are not mutated. Only timed faults (sector-down, surge) are accepted:
// push faults are the executor/chaos layer's concern, and rejecting
// them here keeps one owner per failure mode.
func NewSession(base *netmodel.State, rb *runbook.Runbook, cfg Config) (*Session, error) {
	if base == nil || rb == nil {
		return nil, fmt.Errorf("simwindow: nil state or runbook")
	}
	cfg.applyDefaults(rb)

	model := base.Model.ForkUsers()
	live := model.NewState(base.Cfg.Clone())
	s := &Session{
		cfg:       cfg,
		model:     model,
		live:      live,
		afterRef:  live.Clone(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		curFactor: 1,
		surgeGrid: map[int][]int{},
	}
	for _, step := range rb.Steps {
		for _, ch := range step.Changes {
			if _, err := s.afterRef.Apply(ch); err != nil {
				return nil, fmt.Errorf("simwindow: step %d: %w", step.Index, err)
			}
		}
	}

	numSectors := model.Net.NumSectors()
	for i, f := range cfg.Faults {
		switch f.Kind {
		case FaultSectorDown, FaultLoadSurge:
			if f.Sector < 0 || f.Sector >= numSectors {
				return nil, fmt.Errorf("simwindow: fault %v: sector out of range [0, %d)", f, numSectors)
			}
			if f.Kind == FaultLoadSurge {
				if f.Factor <= 0 {
					return nil, fmt.Errorf("simwindow: fault %v: factor must be positive", f)
				}
				r := f.RadiusM
				if r <= 0 {
					r = cfg.SurgeRadiusM
				}
				rect := geo.NewRectCentered(model.Net.Sectors[f.Sector].Pos, 2*r, 2*r)
				s.surgeGrid[i] = model.GridsIn(nil, rect)
			}
			s.timed = append(s.timed, f)
		default:
			return nil, fmt.Errorf("simwindow: session fault %v: only sector-down and surge faults run in a session", f)
		}
	}
	sortFaults(s.timed)
	if !cfg.FullScanKPIs {
		s.live.EnableKPIAggregates(cfg.Util, cfg.Workers)
		s.afterRef.EnableKPIAggregates(cfg.Util, cfg.Workers)
	}
	return s, nil
}

// Tick returns the number of Advance calls so far (the next sample's
// tick).
func (s *Session) Tick() int { return s.tick }

// Floor returns f(C_after) at the current load without advancing time.
func (s *Session) Floor() float64 {
	if s.cfg.FullScanKPIs {
		return s.afterRef.Utility(s.cfg.Util)
	}
	return s.afterRef.KPIUtility()
}

// Utility returns f(C_live) at the current load without advancing time.
func (s *Session) Utility() float64 {
	if s.cfg.FullScanKPIs {
		return s.live.Utility(s.cfg.Util)
	}
	return s.live.KPIUtility()
}

// Push applies one step's configuration changes to the live network.
// The session clock does not move: delivery timing is the caller's
// protocol, sampled through Advance.
func (s *Session) Push(changes []config.Change) error {
	for _, ch := range changes {
		if _, err := s.live.Apply(ch); err != nil {
			return fmt.Errorf("simwindow: push: %w", err)
		}
	}
	return nil
}

// Advance moves the session one tick — diurnal load evolution, noise,
// surge expiry, and any timed faults due — and returns the tick's KPI
// sample. Given the same seed and call sequence the samples are
// bit-identical run to run.
func (s *Session) Advance() Sample {
	t := s.tick
	s.tick++

	factor := profileFactorAt(&s.cfg, t)
	if s.cfg.LoadNoise > 0 {
		factor *= math.Exp(s.cfg.LoadNoise * s.rng.NormFloat64())
	}
	loadChanged := factor != s.curFactor
	if loadChanged {
		s.model.ScaleUsers(factor / s.curFactor)
		s.curFactor = factor
	}
	for i := 0; i < len(s.active); {
		if t >= s.active[i].endTick {
			inv := 1 / s.active[i].factor
			s.model.ScaleUsersAt(s.active[i].grids, inv)
			s.noteScaledAt(s.active[i].grids, inv)
			s.active = append(s.active[:i], s.active[i+1:]...)
			loadChanged = true
			continue
		}
		i++
	}

	for s.timedNext < len(s.timed) && s.timed[s.timedNext].Tick <= t {
		f := s.timed[s.timedNext]
		s.timedNext++
		switch f.Kind {
		case FaultSectorDown:
			// The session's faults were validated at construction; a failed
			// apply here means the sector is already off, which the fault
			// subsumes.
			s.live.MustApply(config.Change{Sector: f.Sector, TurnOff: true})
		case FaultLoadSurge:
			grids := s.surgeGrid[s.sessionFaultIndex(f)]
			dur := f.DurationTicks
			if dur <= 0 {
				dur = s.cfg.Ticks + 1 - t
			}
			s.model.ScaleUsersAt(grids, f.Factor)
			s.noteScaledAt(grids, f.Factor)
			s.active = append(s.active, surge{endTick: t + dur, grids: grids, factor: f.Factor})
			loadChanged = true
		}
	}
	if loadChanged && s.cfg.FullScanKPIs {
		s.live.RecomputeLoads()
		s.afterRef.RecomputeLoads()
	}
	if !s.cfg.FullScanKPIs {
		s.sinceSync++
		if s.sinceSync >= meterResyncTicks {
			s.sinceSync = 0
			s.live.ResyncKPIAggregates(s.cfg.Workers)
			s.afterRef.ResyncKPIAggregates(s.cfg.Workers)
		}
	}

	return Sample{
		Tick:       t,
		Utility:    s.Utility(),
		Floor:      s.Floor(),
		LoadFactor: s.curFactor,
	}
}

// noteScaledAt repairs both states' loads and aggregates after a
// localized base-weight rescale (no-op on the legacy full-scan path,
// which rebuilds loads wholesale instead).
func (s *Session) noteScaledAt(grids []int, factor float64) {
	if s.cfg.FullScanKPIs {
		return
	}
	s.live.NoteUsersScaledAt(grids, factor)
	s.afterRef.NoteUsersScaledAt(grids, factor)
}

// sessionFaultIndex recovers the Config.Faults index of a timed fault
// (surge grid sets are precomputed per original index).
func (s *Session) sessionFaultIndex(f Fault) int {
	for i := range s.cfg.Faults {
		if s.cfg.Faults[i] == f {
			return i
		}
	}
	return -1
}

// FloorTolerance is the comparison tolerance when checking utility
// against the floor: the floor is itself a model evaluation, so exact
// ties count as "at the floor". Exported for the executor's KPI
// watchdog, which must agree with the simulator on what a breach is.
func FloorTolerance(floor float64) float64 { return floorEps(floor) }
