package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"magus/internal/core"
	"magus/internal/journal"
	"magus/internal/topology"
	"magus/internal/upgrade"
)

// sixJobs is a six-job single-market campaign (engines build once and
// cache-hit after).
func sixJobs() []JobSpec {
	specs := make([]JobSpec, 6)
	for i := range specs {
		specs[i] = JobSpec{Class: topology.Suburban, Seed: 1, Scenario: upgrade.SingleSector, Method: core.PowerOnly}
	}
	return specs
}

// TestCrashRecovery is the crash-recovery integration test of the
// lifecycle WAL: run 1 completes two jobs and dies with one in flight
// and three queued; run 2 replays the journal, re-enqueues exactly the
// four unfinished jobs, and finishes them. No job that completed in run
// 1 runs again.
func TestCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Builds 1-2 (jobs 0 and 1; the second is a cache hit) succeed; any
	// later build hangs until its context dies — the job the crash
	// catches in flight.
	cache := NewEngineCache(4)
	var builds atomic.Int32
	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		if builds.Add(1) > 2 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return testBuild(cache)(ctx, class, seed)
	}
	o, err := New(Config{Build: build, Workers: 1, Journal: jr, BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(sixJobs()); err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker is stuck inside job 2's build: jobs 0
	// and 1 are then done and journaled.
	deadline := time.Now().Add(30 * time.Second)
	for builds.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the blocking build")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Hard stop: like a crash, shutdown-cancelled jobs leave no terminal
	// record.
	o.Close()
	jr.Close()

	pending, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("ReplayJournal: %v", err)
	}
	if len(pending) != 4 {
		t.Fatalf("replayed %d pending jobs, want 4: %+v", len(pending), pending)
	}
	for _, p := range pending {
		if p.Job < 2 {
			t.Errorf("job %d completed in run 1 but was replayed (would run twice)", p.Job)
		}
		if p.Spec.Class != topology.Suburban || p.Spec.Seed != 1 {
			t.Errorf("job %d spec corrupted in replay: %+v", p.Job, p.Spec)
		}
	}

	// Run 2: fresh orchestrator over the same journal finishes the
	// recovered jobs.
	jr2, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	o2, err := New(Config{Build: testBuild(cache), Workers: 2, Journal: jr2})
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	cs, err := o2.Resubmit(pending)
	if err != nil {
		t.Fatalf("Resubmit: %v", err)
	}
	if len(cs) != 1 {
		t.Fatalf("resubmitted %d campaigns, want 1 (all pending jobs shared one)", len(cs))
	}
	if err := o2.CompactJournal(); err != nil {
		t.Fatalf("CompactJournal: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, c := range cs {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("recovered campaign did not finish: %v", err)
		}
		snap := c.Snapshot()
		if snap.Counts["done"] != 4 {
			t.Fatalf("recovered campaign counts = %v, want 4 done", snap.Counts)
		}
	}

	// Every journaled job is now terminal: a further replay finds
	// nothing to do.
	if err := jr2.Sync(); err != nil {
		t.Fatal(err)
	}
	left, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("ReplayJournal after recovery: %v", err)
	}
	if len(left) != 0 {
		t.Fatalf("%d jobs still pending after recovery: %+v", len(left), left)
	}
}

// TestDrainParksUnfinishedJobs: a drain whose deadline expires with a
// job mid-run parks everything unfinished for replay and refuses new
// admissions.
func TestDrainParksUnfinishedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	o, err := New(Config{Build: build, Workers: 1, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(sixJobs()[:3]); err != nil {
		t.Fatal(err)
	}
	// Let the worker pick up job 0 before draining.
	waitForRunning(t, o, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep := o.Drain(ctx)
	if rep.Requeued != 3 || rep.Completed != 0 {
		t.Fatalf("drain report = %+v, want 3 requeued, 0 completed", rep)
	}
	if _, err := o.Submit(sixJobs()[:1]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}
	if !o.Metrics().Draining {
		t.Error("metrics do not report draining")
	}

	pending, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 3 {
		t.Fatalf("replayed %d pending jobs after drain, want 3", len(pending))
	}
}

// TestDrainLetsRunningJobsFinish: with a generous deadline, in-flight
// work completes and is journaled terminal; nothing is requeued.
func TestDrainLetsRunningJobsFinish(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	cache := NewEngineCache(4)
	gate := make(chan struct{})
	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return testBuild(cache)(ctx, class, seed)
	}
	o, err := New(Config{Build: build, Workers: 2, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	c, err := o.Submit(sixJobs()[:2])
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs must be in flight before the drain starts, or it would
	// (correctly) park them as queued instead of waiting them out.
	waitForRunning(t, o, 2)
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep := o.Drain(ctx)
	if rep.Requeued != 0 {
		t.Fatalf("drain report = %+v, want 0 requeued", rep)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not finished after drain")
	}
	if got := c.Snapshot().Counts["done"]; got != 2 {
		t.Fatalf("done = %d, want 2", got)
	}
	pending, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("replayed %d pending jobs after clean drain, want 0", len(pending))
	}
}

// TestCancelledJobsAreTerminalInJournal: a user cancel is deliberate —
// replay must not resurrect the cancelled jobs.
func TestCancelledJobsAreTerminalInJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	o, err := New(Config{Build: build, Workers: 1, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	c, err := o.Submit(sixJobs()[:3])
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, o, 1)
	c.Cancel("operator says no")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("cancelled campaign did not settle: %v", err)
	}
	if err := jr.Sync(); err != nil {
		t.Fatal(err)
	}
	pending, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("cancelled jobs replayed as pending: %+v", pending)
	}
}

// TestBackoffWaitHonorsCancellation is the regression test for the
// retry backoff: with a multi-second backoff pending, cancelling the
// campaign must end the job immediately, not after the backoff expires.
func TestBackoffWaitHonorsCancellation(t *testing.T) {
	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		return nil, Transient(errors.New("flaky backend"))
	}
	o, err := New(Config{Build: build, Workers: 1, MaxAttempts: 5, RetryBackoff: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	c, err := o.Submit(sixJobs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, o, 1)
	// The first attempt fails instantly; the worker is now in the 30s
	// backoff wait.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	c.Cancel("user abort")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("job still waiting out its backoff after cancel: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to cut the backoff wait short", elapsed)
	}
	if got := c.Snapshot().Counts["cancelled"]; got != 1 {
		t.Fatalf("counts = %v, want 1 cancelled", c.Snapshot().Counts)
	}
}

// TestJournalCompactionThreshold: finishing a campaign past the record
// threshold compacts the log down to just the still-pending jobs.
func TestJournalCompactionThreshold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	cache := NewEngineCache(4)
	o, err := New(Config{Build: testBuild(cache), Workers: 1, Journal: jr, CompactRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	c, err := o.Submit(sixJobs()[:3])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// finishLocked kicked off an async compaction; with nothing pending
	// the log should shrink to zero records.
	deadline := time.Now().Add(10 * time.Second)
	for jr.Records() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("journal still has %d records, compaction never ran", jr.Records())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalFencedRecovery: two orchestrators replay the same journal
// after a crash — the split-brain a hung-but-alive process or a doubled
// restart produces. Only the latest epoch claimant may resubmit; the
// stale claimant's Resubmit is rejected outright, so every recovered
// job produces exactly one set of campaign results.
func TestJournalFencedRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Run 1 crashes with every job still pending: builds hang until the
	// crash (Close) cancels them.
	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	o, err := New(Config{Build: build, Workers: 1, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Submit(sixJobs()[:3]); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, o, 1)
	o.Close()
	jr.Close()

	// Both would-be successors replay the same log and see the same
	// pending work.
	pendingA, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	pendingB, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pendingA) != 3 || len(pendingB) != 3 {
		t.Fatalf("replayed %d/%d pending jobs, want 3/3", len(pendingA), len(pendingB))
	}

	jrA, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jrA.Close()
	epochA, err := jrA.ClaimEpoch()
	if err != nil {
		t.Fatal(err)
	}
	var buildsA atomic.Int32
	countingBuildA := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		buildsA.Add(1)
		return testBuild(NewEngineCache(4))(ctx, class, seed)
	}
	orchA, err := New(Config{Build: countingBuildA, Workers: 1, Journal: jrA, Epoch: epochA})
	if err != nil {
		t.Fatal(err)
	}
	defer orchA.Close()

	// B claims after A: A is now the stale epoch.
	jrB, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jrB.Close()
	epochB, err := jrB.ClaimEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epochB <= epochA {
		t.Fatalf("epochs not increasing: A=%d B=%d", epochA, epochB)
	}
	cache := NewEngineCache(4)
	orchB, err := New(Config{Build: testBuild(cache), Workers: 2, Journal: jrB, Epoch: epochB})
	if err != nil {
		t.Fatal(err)
	}
	defer orchB.Close()

	// The stale claimant is fenced: Resubmit rejected, nothing runs, no
	// fresh admissions either.
	if _, err := orchA.Resubmit(pendingA); !errors.Is(err, journal.ErrStaleEpoch) {
		t.Fatalf("stale Resubmit = %v, want ErrStaleEpoch", err)
	}
	if _, err := orchA.Submit(sixJobs()[:1]); !errors.Is(err, journal.ErrStaleEpoch) {
		t.Fatalf("stale Submit = %v, want ErrStaleEpoch", err)
	}
	if got := buildsA.Load(); got != 0 {
		t.Fatalf("fenced orchestrator executed %d builds, want 0", got)
	}

	// The current claimant recovers and finishes the work, exactly once.
	cs, err := orchB.Resubmit(pendingB)
	if err != nil {
		t.Fatalf("current-epoch Resubmit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := 0
	for _, c := range cs {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("recovered campaign did not finish: %v", err)
		}
		done += c.Snapshot().Counts["done"]
	}
	if done != 3 {
		t.Fatalf("recovered %d done jobs, want 3", done)
	}
	if err := jrB.Sync(); err != nil {
		t.Fatal(err)
	}
	left, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d jobs still pending after fenced recovery: %+v", len(left), left)
	}
}

// TestFencingSuppressesStaleResults: an orchestrator whose epoch goes
// stale mid-run must not journal the terminal states of jobs it still
// finishes — the new claimant owns those jobs now, and a late "done"
// record would erase them from its replay.
func TestFencingSuppressesStaleResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	jr, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	epoch, err := jr.ClaimEpoch()
	if err != nil {
		t.Fatal(err)
	}

	cache := NewEngineCache(4)
	gate := make(chan struct{})
	build := func(ctx context.Context, class topology.AreaClass, seed int64) (*core.Engine, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return testBuild(cache)(ctx, class, seed)
	}
	o, err := New(Config{Build: build, Workers: 1, Journal: jr, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	c, err := o.Submit(sixJobs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, o, 1)

	// Another process claims the journal while the job is mid-build.
	jr2, err := journal.Open(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if _, err := jr2.ClaimEpoch(); err != nil {
		t.Fatal(err)
	}

	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Counts["done"]; got != 1 {
		t.Fatalf("done = %d, want 1 (execution itself is not fenced)", got)
	}
	if got := o.Metrics().FencedResults; got != 1 {
		t.Fatalf("FencedResults = %d, want 1", got)
	}
	// The suppressed terminal record leaves the job pending for the new
	// owner's replay.
	if err := jr.Sync(); err != nil {
		t.Fatal(err)
	}
	pending, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("replay found %d pending jobs, want 1 (stale result must not commit)", len(pending))
	}
}

// waitForRunning polls until n jobs are running.
func waitForRunning(t *testing.T, o *Orchestrator, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		o.mu.Lock()
		running := o.jobCounts[JobRunning]
		o.mu.Unlock()
		if running >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d jobs running, want %d", running, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
