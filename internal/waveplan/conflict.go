// Package waveplan plans an upgrade *season*: the paper's mitigation
// machinery takes the set of sectors going off-air as given, but a real
// operator must first decide which sectors go dark together and in what
// order across a maintenance calendar. This package partitions a
// market's upgrade set into an ordered sequence of waves subject to
// co-upgrade conflicts (two sectors whose coverage overlaps past a
// threshold never darken together), crew capacity, and calendar
// blackout slots; anneals over wave assignments with a cheap
// SpeculateBatch-based scorer in the inner loop; evaluates the winning
// season exactly with one mitigation plan per wave (the paper's
// f(C_after) floor); and emits one runbook per wave with rolling vs
// stopping semantics and an explicit halt/rollback contract, after
// celestia-app's ADR-018 upgrade taxonomy. An optional simwindow replay
// of each wave turns a mid-wave floor breach into a season halt plus a
// rollback runbook.
package waveplan

import (
	"sort"

	"magus/internal/geo"
	"magus/internal/netmodel"
)

// ConflictGraph records which pairs of the upgrade set must not go
// off-air in the same wave because their coverage footprints overlap.
// Vertices are sector IDs; an edge means "never co-darken".
type ConflictGraph struct {
	// Sectors is the upgrade set, ascending.
	Sectors []int
	// Threshold and MarginDB are the parameters the graph was built with.
	Threshold float64
	MarginDB  float64

	// index maps sector ID -> position in Sectors.
	index map[int]int
	// adj[i] lists the positions (into Sectors) conflicting with
	// Sectors[i], ascending.
	adj [][]int
	// overlap[i] holds, parallel to adj[i], the coverage overlap
	// fraction of each conflicting pair.
	overlap [][]float64
	// coverSize[i] is |cover(Sectors[i])| in grid cells.
	coverSize []int
	edges     int
}

// Overlap returns the coverage overlap fraction of two sector coverage
// sets, both sorted ascending: |A∩B| / min(|A|, |B|). Zero when either
// set is empty. Exported so tests can brute-force-check graph edges.
func Overlap(a, b []int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	shared, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			shared++
			i++
			j++
		}
	}
	minLen := len(a)
	if len(b) < minLen {
		minLen = len(b)
	}
	return float64(shared) / float64(minLen)
}

// boundsOf returns the bounding rectangle of the given grid cells'
// centers (a degenerate point rect for a single cell).
func boundsOf(m *netmodel.Model, grids []int) geo.Rect {
	var r geo.Rect
	for i, g := range grids {
		c := m.CellCenter(g)
		if i == 0 {
			r = geo.Rect{Min: c, Max: c}
			continue
		}
		if c.X < r.Min.X {
			r.Min.X = c.X
		}
		if c.Y < r.Min.Y {
			r.Min.Y = c.Y
		}
		if c.X > r.Max.X {
			r.Max.X = c.X
		}
		if c.Y > r.Max.Y {
			r.Max.Y = c.Y
		}
	}
	return r
}

// BuildConflictGraph derives the co-upgrade conflict graph for the
// given upgrade set. Coverage footprints come from the model's
// per-sector entry index (Model.CoverageGrids, the same reach criterion
// as InterferingSectorCount at marginDB); two sectors conflict when the
// overlap fraction of their footprints exceeds threshold. Footprint
// bounding rectangles prefilter the pairwise pass, so only spatially
// plausible pairs pay the set intersection.
func BuildConflictGraph(m *netmodel.Model, sectors []int, threshold, marginDB float64) *ConflictGraph {
	ids := append([]int(nil), sectors...)
	sort.Ints(ids)
	g := &ConflictGraph{
		Sectors:   ids,
		Threshold: threshold,
		MarginDB:  marginDB,
		index:     make(map[int]int, len(ids)),
		adj:       make([][]int, len(ids)),
		overlap:   make([][]float64, len(ids)),
		coverSize: make([]int, len(ids)),
	}
	cover := make([][]int, len(ids))
	bounds := make([]geo.Rect, len(ids))
	for i, s := range ids {
		g.index[s] = i
		cover[i] = m.CoverageGrids(nil, s, marginDB)
		g.coverSize[i] = len(cover[i])
		bounds[i] = boundsOf(m, cover[i])
	}
	for i := range ids {
		if len(cover[i]) == 0 {
			continue
		}
		for j := i + 1; j < len(ids); j++ {
			if len(cover[j]) == 0 || !bounds[i].Intersects(bounds[j]) {
				continue
			}
			frac := Overlap(cover[i], cover[j])
			if frac > threshold {
				g.adj[i] = append(g.adj[i], j)
				g.overlap[i] = append(g.overlap[i], frac)
				g.adj[j] = append(g.adj[j], i)
				g.overlap[j] = append(g.overlap[j], frac)
				g.edges++
			}
		}
	}
	return g
}

// Edges returns the number of conflict pairs.
func (g *ConflictGraph) Edges() int { return g.edges }

// Degree returns the number of sectors conflicting with sector s (0 for
// sectors outside the upgrade set).
func (g *ConflictGraph) Degree(s int) int {
	i, ok := g.index[s]
	if !ok {
		return 0
	}
	return len(g.adj[i])
}

// Conflicts reports whether sectors a and b must not co-darken.
func (g *ConflictGraph) Conflicts(a, b int) bool {
	i, ok := g.index[a]
	if !ok {
		return false
	}
	j, ok := g.index[b]
	if !ok {
		return false
	}
	for _, k := range g.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// MaxDegree returns the largest conflict degree in the graph.
func (g *ConflictGraph) MaxDegree() int {
	max := 0
	for i := range g.adj {
		if d := len(g.adj[i]); d > max {
			max = d
		}
	}
	return max
}

// conflictsAt reports whether placing Sectors[i] alongside the member
// positions in slot would violate the graph.
func (g *ConflictGraph) conflictsAt(i int, slot []int) bool {
	for _, j := range slot {
		for _, k := range g.adj[i] {
			if k == j {
				return true
			}
		}
	}
	return false
}
